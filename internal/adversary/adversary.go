// Package adversary implements the Byzantine fault model for the
// estimation stack: a configurable fraction of agents misreport their
// collision observations, while the simulation itself (who is where,
// who collides with whom) stays exactly the paper's model. The paper's
// headline virtue is that encounter-rate estimation is robust; this
// package is how the repo stresses that claim.
//
// The design mirrors the honest stack's layering. Faults are injected
// as a wrapper over the sim.Observer pipeline, not into the world: a
// Tamperer compiles an AdversaryConfig into core.ReportFilter values
// (see core.WithReportFilter) that rewrite the per-agent counts an
// estimation observer is about to accumulate. The world's stepping and
// the pipeline's shared zero-allocation snapshots are untouched, so
// the hot path keeps its cost and the workers=1-vs-N bit-identity
// invariant keeps holding: all adversary randomness rides per-agent
// rng substreams keyed off the configured seed (derived from the run
// seed by callers), never off execution order.
//
// Strategies (Kind):
//
//   - Inflate / Deflate — count misreporting: the agent adds or
//     subtracts Param collisions to every round's report.
//   - Random — the agent reports a uniform count in [0, Param] each
//     round, drawn from its private substream.
//   - Lie — property-bit lying (Section 5.2): the agent claims every
//     encounter was with a tagged agent, driving the reported property
//     frequency f_P toward 1. Requires the tagged filter.
//   - Stall — from round Param on, the agent stops moving (Stationary
//     policy, when the Tamperer is attached to the world) and keeps
//     reporting the stale count it saw at the stall round.
//   - Crash — from round Param on, the agent drops out: it reports
//     zero collisions for the rest of the run.
//
// The Detector (detect.go) is the defensive counterpart: it flags
// dishonest agents from contradictory co-located reports and scores
// itself as TPR/FPR against the Tamperer's ground-truth mask.
package adversary

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"antdensity/internal/core"
	"antdensity/internal/rng"
	"antdensity/internal/sim"
)

// Kind names a fault strategy.
type Kind int

const (
	// Inflate adds Param collisions to every round's reported count.
	Inflate Kind = iota
	// Deflate subtracts Param collisions (floored at zero) from every
	// round's reported count.
	Deflate
	// Random reports a uniform count in [0, Param] each round.
	Random
	// Lie reports every encounter as tagged (property runs).
	Lie
	// Stall freezes the agent at round Param: it stops moving and
	// keeps reporting its round-Param count forever.
	Stall
	// Crash silences the agent from round Param on: it reports zero.
	Crash
)

var kindNames = [...]string{"inflate", "deflate", "random", "lie", "stall", "crash"}

// String returns the kind's wire name (the -adversary flag and serve
// API spelling).
func (k Kind) String() string {
	if int(k) >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a wire name to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("adversary: unknown kind %q (valid: %s)", s, strings.Join(kindNames[:], ", "))
}

// Timed reports whether the kind's Param is a trigger round (stall and
// crash) rather than a count magnitude.
func (k Kind) Timed() bool { return k == Stall || k == Crash }

// defaultParam is the per-kind Param applied when Config.Param is 0.
// The timed kinds have no sensible horizon-free default, so callers
// that know the horizon (the Spec layer, the CLI) resolve 0 to half
// the horizon before building the Tamperer; a bare 0 means round 1.
func (k Kind) defaultParam() float64 {
	switch k {
	case Inflate, Deflate:
		return 5
	case Random:
		return 10
	case Stall, Crash:
		return 1
	}
	return 0
}

// Config describes one run's adversary population: which strategy,
// what fraction of the agents, the strategy parameter, and the seed
// behind all adversary randomness (agent selection and the Random
// strategy's draws).
type Config struct {
	Kind     Kind
	Fraction float64 // adversarial fraction f in [0, 1]
	Param    float64 // strategy parameter; 0 = the kind's default
	Seed     uint64
}

// Validate checks the configuration. Like core.WithNoise, it rejects
// non-finite values explicitly: NaN slips through plain range tests.
func (c Config) Validate() error {
	if int(c.Kind) < 0 || int(c.Kind) >= len(kindNames) {
		return fmt.Errorf("adversary: Kind %d is not a known kind", int(c.Kind))
	}
	if math.IsNaN(c.Fraction) || math.IsInf(c.Fraction, 0) || c.Fraction < 0 || c.Fraction > 1 {
		return fmt.Errorf("adversary: Fraction %v outside [0, 1]", c.Fraction)
	}
	if math.IsNaN(c.Param) || math.IsInf(c.Param, 0) || c.Param < 0 {
		return fmt.Errorf("adversary: Param %v must be finite and >= 0", c.Param)
	}
	if c.Kind.Timed() && c.Param != 0 && c.Param != math.Trunc(c.Param) {
		return fmt.Errorf("adversary: Param %v must be a whole trigger round for kind %q", c.Param, c.Kind)
	}
	return nil
}

// param returns the effective strategy parameter.
func (c Config) param() float64 {
	if c.Param == 0 {
		return c.Kind.defaultParam()
	}
	return c.Param
}

// Tamperer compiles a Config for an n-agent run: it knows which agents
// are adversarial and rewrites their per-round reports. Build the
// filters with Filter / TaggedFilter and hand them to the estimator
// via core.WithReportFilter / core.WithTaggedReportFilter.
//
// A Tamperer belongs to exactly one run: its stall/crash state and
// round memoization are not reusable. It is driven from the pipeline
// goroutine only and is not safe for concurrent use.
type Tamperer struct {
	cfg   Config
	boost int // rounded count magnitude for inflate/deflate/random
	at    int // trigger round for stall/crash

	mask    []bool       // mask[i]: agent i is adversarial
	ids     []int        // adversarial agent ids, ascending
	streams []rng.Stream // per-adversary substreams, indexed by agent id

	world *sim.World // optional; lets Stall freeze movement

	buf        []int // reported totals, reused every round
	tbuf       []int // reported tagged counts, reused every round
	stale      []int // Stall: counts frozen at the trigger round
	staleSet   bool
	lastRound  int // memoization: first report() call per round wins
	lastTagged int
}

// New compiles cfg for an n-agent run. floor(Fraction*n) agents are
// adversarial, chosen by a seeded permutation so the population is a
// deterministic function of (n, Seed) alone — independent of worker
// count, observer order, and everything else.
func New(n int, cfg Config) (*Tamperer, error) {
	if n < 1 {
		return nil, fmt.Errorf("adversary: agent count must be >= 1, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tamperer{
		cfg:       cfg,
		boost:     int(math.Round(cfg.param())),
		mask:      make([]bool, n),
		buf:       make([]int, n),
		lastRound: -1, lastTagged: -1,
	}
	if cfg.Kind.Timed() {
		t.at = int(cfg.param())
		if t.at < 1 {
			t.at = 1
		}
	}
	base := rng.New(cfg.Seed)
	k := int(cfg.Fraction * float64(n))
	// t.buf is free until the first report; borrowing it as PermInto
	// scratch keeps controlled-agent selection allocation-free (the
	// permutation and draws are identical to Perm's).
	for _, id := range base.Split(0).PermInto(t.buf)[:k] {
		t.mask[id] = true
	}
	sub := base.Split(1)
	t.streams = make([]rng.Stream, n)
	for i := 0; i < n; i++ {
		if t.mask[i] {
			t.ids = append(t.ids, i)
			// Private per-agent substream: draws by one adversary
			// never shift another's, so results are independent of
			// which agents exist downstream.
			t.streams[i] = sub.SplitValue(uint64(i))
		}
	}
	if cfg.Kind == Stall {
		t.stale = make([]int, n)
	}
	return t, nil
}

// Config returns the compiled configuration.
func (t *Tamperer) Config() Config { return t.cfg }

// Mask returns the ground-truth adversary mask (mask[i] reports
// whether agent i is adversarial). The slice is live; treat it as
// read-only.
func (t *Tamperer) Mask() []bool { return t.mask }

// NumAdversarial returns the number of adversarial agents.
func (t *Tamperer) NumAdversarial() int { return len(t.ids) }

// Attach lets the Tamperer act on the world itself where the strategy
// calls for it: Stall adversaries switch to the Stationary policy at
// their trigger round, so they physically stop moving in addition to
// reporting stale counts. Optional — without a world, Stall is
// reporting-only. This is the one place the estimation stack
// deliberately influences stepping; the effect is a deterministic
// function of the round index, so determinism across worker counts is
// preserved.
func (t *Tamperer) Attach(w *sim.World) { t.world = w }

// Filter returns the count-report filter covering an estimator's
// primary stream (total counts, or tagged-only counts under
// WithTaggedOnly). Pass it to core.WithReportFilter.
func (t *Tamperer) Filter() core.ReportFilter {
	return func(round int, counts []int) []int { return t.report(round, counts) }
}

// TaggedFilter returns the filter covering a PropertyObserver's
// tagged-count stream. Pass it to core.WithTaggedReportFilter,
// alongside Filter — the Lie strategy reads the round's reported
// totals, which the total filter (run first; see the core option's
// ordering contract) caches.
func (t *Tamperer) TaggedFilter() core.ReportFilter {
	return func(round int, counts []int) []int { return t.reportTagged(round, counts) }
}

// report computes the round's reported totals into t.buf. The first
// call per round wins; later calls (the Detector auditing the same
// round) return the memoized reports so random draws and stall
// captures happen exactly once.
func (t *Tamperer) report(round int, counts []int) []int {
	if round == t.lastRound {
		return t.buf
	}
	t.lastRound = round
	copy(t.buf, counts)
	switch t.cfg.Kind {
	case Inflate:
		for _, i := range t.ids {
			t.buf[i] += t.boost
		}
	case Deflate:
		for _, i := range t.ids {
			if t.buf[i] -= t.boost; t.buf[i] < 0 {
				t.buf[i] = 0
			}
		}
	case Random:
		for _, i := range t.ids {
			t.buf[i] = int(t.streams[i].Uint64n(uint64(t.boost) + 1))
		}
	case Lie:
		// Totals are honest; the lying happens on the tagged stream.
	case Stall:
		if round >= t.at {
			if !t.staleSet {
				t.staleSet = true
				for _, i := range t.ids {
					t.stale[i] = t.buf[i]
				}
				if t.world != nil {
					for _, i := range t.ids {
						t.world.SetPolicy(i, sim.Stationary{})
					}
				}
			}
			for _, i := range t.ids {
				t.buf[i] = t.stale[i]
			}
		}
	case Crash:
		if round >= t.at {
			for _, i := range t.ids {
				t.buf[i] = 0
			}
		}
	}
	return t.buf
}

// reportTagged computes the round's reported tagged counts into
// t.tbuf, memoized per round like report.
func (t *Tamperer) reportTagged(round int, counts []int) []int {
	if t.tbuf == nil {
		t.tbuf = make([]int, len(t.mask))
	}
	if round == t.lastTagged {
		return t.tbuf
	}
	t.lastTagged = round
	copy(t.tbuf, counts)
	if t.cfg.Kind == Lie {
		// Claim every encounter was tagged. The total filter ran
		// first this round (core's ordering contract), so t.buf holds
		// the round's reported totals.
		if round == t.lastRound {
			for _, i := range t.ids {
				t.tbuf[i] = t.buf[i]
			}
		}
		return t.tbuf
	}
	// Count strategies tamper the total stream; keep the adversary's
	// story internally consistent by clamping its tagged report to its
	// (possibly deflated or crashed) total report.
	if round == t.lastRound {
		for _, i := range t.ids {
			if t.tbuf[i] > t.buf[i] {
				t.tbuf[i] = t.buf[i]
			}
		}
	}
	return t.tbuf
}

// ParseFlag parses the CLI grammar kind:fraction[:param][:seed], e.g.
// "inflate:0.2", "crash:0.1:500", "random:0.3:10:7". It returns the
// parsed Config; seed 0 (or omitted) means "derive from the run seed"
// by the caller's convention.
func ParseFlag(s string) (Config, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return Config{}, fmt.Errorf("adversary: flag %q is not kind:fraction[:param][:seed]", s)
	}
	kind, err := ParseKind(parts[0])
	if err != nil {
		return Config{}, err
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Config{}, fmt.Errorf("adversary: fraction %q: %w", parts[1], err)
	}
	cfg := Config{Kind: kind, Fraction: frac}
	if len(parts) >= 3 {
		if cfg.Param, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return Config{}, fmt.Errorf("adversary: param %q: %w", parts[2], err)
		}
	}
	if len(parts) == 4 {
		if cfg.Seed, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
			return Config{}, fmt.Errorf("adversary: seed %q: %w", parts[3], err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
