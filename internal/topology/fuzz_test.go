package topology

import "testing"

// Fuzz targets exercise the arithmetic topologies with adversarial
// inputs; they run their seed corpus under plain `go test` and can be
// fuzzed with `go test -fuzz=FuzzTorus ./internal/topology`.

func FuzzTorusNodeRoundTrip(f *testing.F) {
	f.Add(uint8(2), int64(10), int64(5))
	f.Add(uint8(1), int64(3), int64(0))
	f.Add(uint8(4), int64(7), int64(1000))
	f.Fuzz(func(t *testing.T, dims uint8, side int64, node int64) {
		k := int(dims%4) + 1
		if side < 2 {
			side = 2
		}
		side = side%100 + 2
		g, err := NewTorus(k, side)
		if err != nil {
			t.Skip()
		}
		v := node % g.NumNodes()
		if v < 0 {
			v += g.NumNodes()
		}
		if got := g.Node(g.Coords(v)...); got != v {
			t.Fatalf("round trip failed: %d -> %d", v, got)
		}
		// Every neighbor must round-trip back via the paired direction.
		for dim := 0; dim < k; dim++ {
			if g.Neighbor(g.Neighbor(v, 2*dim), 2*dim+1) != v {
				t.Fatalf("step inverse failed at node %d dim %d", v, dim)
			}
		}
	})
}

func FuzzHypercubeNeighbors(f *testing.F) {
	f.Add(uint8(4), int64(3))
	f.Add(uint8(10), int64(999))
	f.Fuzz(func(t *testing.T, bits uint8, node int64) {
		k := int(bits%16) + 1
		g, err := NewHypercube(k)
		if err != nil {
			t.Skip()
		}
		v := node % g.NumNodes()
		if v < 0 {
			v += g.NumNodes()
		}
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if u == v {
				t.Fatalf("self neighbor at %d", v)
			}
			if g.Neighbor(u, i) != v {
				t.Fatalf("bit flip not involutive at %d bit %d", v, i)
			}
		}
	})
}

func FuzzAdjConstruction(f *testing.F) {
	f.Add(int64(4), int64(0), int64(1), int64(2), int64(3))
	f.Add(int64(2), int64(0), int64(0), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, n, a, b, c, d int64) {
		if n < 1 {
			n = 1
		}
		n = n%50 + 1
		norm := func(x int64) int64 {
			x %= n
			if x < 0 {
				x += n
			}
			return x
		}
		edges := []Edge{{U: norm(a), V: norm(b)}, {U: norm(c), V: norm(d)}}
		g, err := NewAdj(n, edges)
		if err != nil {
			t.Fatalf("normalized edges rejected: %v", err)
		}
		// Degree sum counts each non-loop edge twice and each loop once.
		var sum int64
		for v := int64(0); v < n; v++ {
			sum += int64(g.Degree(v))
		}
		want := int64(0)
		for _, e := range edges {
			if e.U == e.V {
				want++
			} else {
				want += 2
			}
		}
		if sum != want {
			t.Fatalf("degree sum %d, want %d", sum, want)
		}
	})
}
