// Package sim implements the paper's computational model (Section 2):
// a population of anonymous agents placed on a graph, proceeding in
// discrete synchronous rounds. In each round every agent takes a step
// according to its movement policy, and can then sense the number of
// other agents at its position via count(position), the model's only
// communication primitive.
//
// # Determinism invariant
//
// The engine is deterministic: every agent draws from a private
// rng.Stream split from the world seed (stored contiguously, one
// value per agent), so the same Config produces the same byte-for-byte
// results regardless of scheduling. The invariant is load-bearing and
// guarded by property tests: for a fixed seed, positions and all count
// queries are identical whether the world steps serially or with any
// StepParallel worker count, whether policies take the scalar or the
// BulkStepper fast path, and whether the occupancy index is dense or
// sparse.
//
// # Occupancy index selection
//
// count(position) queries are served from an occupancy index with two
// interchangeable representations. When the graph's node count fits
// the dense memory budget (at most 1<<22 nodes, 32 MiB of cells), the
// index is a flat []cell array indexed by node id; larger graphs —
// including the paper's "A larger than the area agents traverse"
// regime with 10^12-node tori — use a sparse map keyed by occupied
// node. Config.Occupancy can force either choice (OccDense, OccSparse)
// for testing or tuning; OccAuto applies the budget rule. Both
// representations are maintained incrementally while the world steps:
// once a count query has built the index, each subsequent round only
// decrements the cell an agent left and increments the cell it
// entered, so Count/CountTagged/CountInGroup never trigger an
// O(agents) rebuild and allocate nothing in steady state.
//
// # BulkStepper fast path
//
// Policies may additionally implement BulkStepper, whose StepMany
// advances a whole slice of agents in one call. Implementations must
// either move every agent exactly as the equivalent sequence of scalar
// Step calls would — consuming identical randomness from each agent's
// stream — or leave positions and streams untouched and report false,
// in which case the world falls back to per-agent stepping. All five
// built-in policies implement it over the arithmetic regular
// topologies (torus/ring/hypercube/complete), with degree lookups
// hoisted and the Policy.Step → Graph.Neighbor interface dispatch
// devirtualized into arithmetic-only inner loops; irregular graphs and
// worlds with per-agent policy overrides (SetPolicy) use the scalar
// path.
//
// StepParallel distributes either path across a persistent worker pool
// that is created lazily on first use and reused every round, so
// steady-state parallel stepping starts no goroutines and allocates
// nothing. With the index active, Step, StepParallel, and Count run at
// zero allocations per round.
package sim
