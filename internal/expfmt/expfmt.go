// Package expfmt renders the experiment harness's output tables. Every
// experiment emits rows through a Table so that paper-vs-measured
// series print in a consistent fixed-width format and can also be
// exported as CSV.
package expfmt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a fixed header and renders them
// aligned. The zero value is unusable; construct with NewTable.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row. Values are formatted with %v; float64 values
// are compacted to a short fixed precision.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = formatCell(v)
	}
	t.rows = append(t.rows, row)
}

// formatCell renders one value for display.
func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

// formatFloat picks a compact representation: scientific for very
// small or large magnitudes, fixed otherwise.
func formatFloat(x float64) string {
	abs := x
	if abs < 0 {
		abs = -abs
	}
	switch {
	case x == 0:
		return "0"
	case abs < 1e-4 || abs >= 1e7:
		return fmt.Sprintf("%.3e", x)
	case abs < 1:
		return fmt.Sprintf("%.5f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Render writes the table to w in aligned fixed-width columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as comma-separated values. Cells
// containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvEscape quotes a cell when needed.
func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }
