package experiments

import (
	"fmt"
	"math"

	"antdensity/internal/netsize"
	"antdensity/internal/results"
	"antdensity/internal/rng"
	"antdensity/internal/stats"
	"antdensity/internal/topology"
)

var e25Axes = []Axis{
	IntAxis("side", []int{7, 11, 15}, []int{7, 11}).WithUnit("torus side"),
	StringAxis("strategy", []string{"katzir", "multiround"}, nil),
}

func init() {
	register(Experiment{
		ID:    "E25",
		Title: "Query scaling in |V|: multi-round walks vs snapshot on 3-D tori",
		Claim: "Section 5.1.5 example: [KLSC14] needs ~|V|^(2/k+1/2) queries on the k=3 torus; multi-round needs ~|V|^((k+1)/2k)",
		Axes:  e25Axes,
		Columns: []results.Column{
			{Name: "num_nodes", Unit: "nodes"},
			{Name: "walkers", Unit: "walkers"},
			{Name: "steps", Unit: "rounds"},
			{Name: "queries", Unit: "link queries"},
			{Name: "mean_abs_rel_err"},
		},
		Cell: cellE25,
		Body: runE25,
	})
}

// e25Budget derives one torus side's mixing parameters and walker
// budgets. Walker budgets come from the theory: the snapshot estimator
// needs n_K = Theta(sqrt(|V|)) walkers; with B(t) = O(1) on the 3-D
// torus, Theorem 27 lets the multi-round estimator shrink to
// n = Theta(sqrt(|V|/t)) with t = Theta(M). Constants chosen so both
// achieve comparable error at the smallest size.
func e25Budget(p Params, side int) (g *topology.Torus, m, nK, nOurs int) {
	s := rng.New(p.Seed)
	g = topology.MustTorus(3, int64(side))
	vcount := g.NumNodes()
	lambda := topology.SpectralGap(g, 400, s.Split(uint64(side)))
	if lambda >= 1 {
		lambda = 1 - 1e-9
	}
	m = topology.MixingTime(topology.NumEdges(g), lambda, 0.1)
	nK = int(math.Ceil(4 * math.Sqrt(float64(vcount))))
	nOurs = int(math.Ceil(6 * math.Sqrt(float64(vcount)/float64(m))))
	if nOurs < 6 {
		nOurs = 6
	}
	return g, m, nK, nOurs
}

// e25Measure runs one (side, strategy) cell and returns the mean query
// bill and mean relative error of C alongside the cell's walker/step
// budget.
func e25Measure(p Params, side int, strategy string) (queries, relErr float64, walkers, steps, trials int, err error) {
	trials = pick(p, 8, 4)
	g, m, nK, nOurs := e25Budget(p, side)
	truth := 1 / float64(g.NumNodes())
	var seedBase uint64
	switch strategy {
	case "katzir":
		walkers, steps, seedBase = nK, 0, uint64(side)*100
	case "multiround":
		walkers, steps, seedBase = nOurs, m, uint64(side)*100+50
	default:
		return 0, 0, 0, 0, 0, fmt.Errorf("E25: unknown strategy %q", strategy)
	}
	res, err := p.runTrials(TrialSpec{
		Name:   "E25",
		Trials: trials,
		Seed:   p.Seed + seedBase,
		Run: func(tr Trial) (TrialResult, error) {
			var r TrialResult
			w, err := netsize.NewWalkersAtSeed(g, walkers, 0, tr.Stream)
			if err != nil {
				return r, err
			}
			w.BurnIn(m)
			var c float64
			if steps == 0 {
				c = w.KatzirEstimate(0).C
			} else {
				est, err := w.EstimateSize(steps, 0)
				if err != nil {
					return r, err
				}
				c = est.C
			}
			r.Samples = []float64{c}
			r.Set("queries", float64(w.Queries()))
			return r, nil
		},
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	return res.MeanValue("queries"), stats.Mean(stats.RelErrors(res.Samples(), truth)), walkers, steps, trials, nil
}

func cellE25(p Params, pt Point) ([]results.Cell, error) {
	side := pt.Int("side")
	queries, relErr, walkers, steps, trials, err := e25Measure(p, side, pt.String("strategy"))
	if err != nil {
		return nil, err
	}
	g := topology.MustTorus(3, int64(side))
	return []results.Cell{
		results.Int(g.NumNodes()),
		results.Int(int64(walkers)),
		results.Int(int64(steps)),
		results.Float(queries).WithN(trials),
		results.Float(relErr).WithN(trials),
	}, nil
}

// runE25 reproduces the paper's illustrative asymptotic comparison:
// on k-dimensional tori (k=3) the snapshot estimator's query bill is
// dominated by n_K ~ sqrt(|V|) walkers each paying the burn-in M,
// while the multi-round estimator runs n ~ n_K/4 walkers for t = M
// extra steps and still collects more collision signal. We sweep |V|,
// charge both strategies their actual link queries, and fit query
// growth exponents.
func runE25(p Params, rep *Report) error {
	tb := rep.Table("|V|", "strategy", "walkers", "steps", "mean queries", "mean |rel err| of C")
	var sizes, qKatzir, qOurs []float64
	var lastRatio float64
	var lastKatzir float64
	if err := Grid(p, e25Axes, func(pt Point) error {
		side, strategy := pt.Int("side"), pt.String("strategy")
		queries, relErr, walkers, steps, _, err := e25Measure(p, side, strategy)
		if err != nil {
			return err
		}
		vcount := topology.MustTorus(3, int64(side)).NumNodes()
		tb.AddRow(vcount, strategy, walkers, steps, queries, relErr)
		switch strategy {
		case "katzir":
			sizes = append(sizes, float64(vcount))
			qKatzir = append(qKatzir, queries)
			lastKatzir = queries
		case "multiround":
			qOurs = append(qOurs, queries)
			lastRatio = queries / lastKatzir
		}
		return nil
	}); err != nil {
		return err
	}
	expK, _, _ := stats.FitPowerLaw(sizes, qKatzir)
	expO, _, _ := stats.FitPowerLaw(sizes, qOurs)
	rep.SetMetric("exponent_katzir", expK)
	rep.SetMetric("exponent_ours", expO)
	rep.SetMetric("query_ratio_largest", lastRatio)
	rep.Notef("paper (k=3): snapshot ~|V|^1.17, multi-round ~|V|^0.67 (both x polylog); measured query exponents %.2f vs %.2f, query ratio at largest |V| = %.2f", expK, expO, lastRatio)
	return nil
}
