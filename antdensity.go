package antdensity

// This file is the library's public facade: the type aliases shared
// by both API generations, plus the v1 one-shot wrappers, which are
// now thin deprecated shims over the v2 Spec/Run layer (spec.go,
// run.go, manager.go). The v2 way:
//
//	run, _ := antdensity.DensitySpec(
//	        antdensity.WithTorus2D(200),
//	        antdensity.WithAgents(2001),
//	        antdensity.WithSeed(42),
//	        antdensity.WithRounds(2000),
//	).Start(ctx)
//	snap := run.Snapshot()          // anytime, from any goroutine
//	out, _ := run.Output()          // blocks; out.Estimates
//
// The v1 wrappers remain supported and produce bit-identical outputs
// for fixed seeds (proven by the shim-equivalence tests); new code
// should prefer Spec/Run, which adds cancellation, live snapshots,
// and concurrent scheduling via Manager.

import (
	"context"
	"fmt"

	"antdensity/internal/core"
	"antdensity/internal/netsize"
	"antdensity/internal/quorum"
	"antdensity/internal/rng"
	"antdensity/internal/sim"
	"antdensity/internal/topology"
)

// Graph is a finite undirected graph whose nodes are [0, NumNodes()).
// All estimator functions accept any Graph.
type Graph = topology.Graph

// Torus is the k-dimensional torus topology (the paper's grid model;
// k=1 is the ring of Section 4.2, k=2 the headline two-dimensional
// surface).
type Torus = topology.Torus

// NewTorus2D returns the paper's sqrt(A) x sqrt(A) two-dimensional
// torus with the given side length.
func NewTorus2D(side int64) (*Torus, error) { return topology.NewTorus(2, side) }

// NewTorus returns a k-dimensional torus.
func NewTorus(dims int, side int64) (*Torus, error) { return topology.NewTorus(dims, side) }

// NewRing returns the cycle on n nodes.
func NewRing(n int64) (*Torus, error) { return topology.NewRing(n) }

// NewHypercube returns the k-dimensional Boolean hypercube (Section
// 4.5).
func NewHypercube(bits int) (*topology.Hypercube, error) { return topology.NewHypercube(bits) }

// NewComplete returns the complete graph on n nodes — the paper's
// fast-mixing baseline.
func NewComplete(n int64) (*topology.Complete, error) { return topology.NewComplete(n) }

// NewRandomRegular samples a random d-regular expander on n nodes
// (Section 4.4) using randomness from the given seed.
func NewRandomRegular(n int64, d int, seed uint64) (*topology.Adj, error) {
	return topology.NewRandomRegular(n, d, rng.New(seed))
}

// World is the synchronous multi-agent simulation of the paper's
// Section 2 model.
type World = sim.World

// WorldConfig configures a World.
type WorldConfig = sim.Config

// NewWorld creates a simulation world; see WorldConfig for the knobs
// (graph, agent count, seed, placement, movement policy).
func NewWorld(cfg WorldConfig) (*World, error) { return sim.NewWorld(cfg) }

// EstimatorOption configures the estimators (noisy sensing, tagged
// counting); see WithNoise and WithTaggedOnly.
type EstimatorOption = core.Option

// WithNoise models imperfect collision sensing (Section 6.1).
func WithNoise(detectProb, spuriousProb float64, seed uint64) EstimatorOption {
	return core.WithNoise(detectProb, spuriousProb, seed)
}

// WithTaggedOnly counts only collisions with tagged agents,
// estimating a property density d_P (Section 5.2).
func WithTaggedOnly() EstimatorOption { return core.WithTaggedOnly() }

// runShim compiles and executes a Spec synchronously — the shared
// engine behind the deprecated v1 wrappers. The Run never escapes, so
// nobody can read intermediate snapshots: publication is throttled to
// the terminal snapshot only, keeping the shims as cheap as the
// pre-redesign one-shot paths (publication is purely observational
// and cannot change outputs).
func runShim(s *Spec) (Output, error) {
	s.SnapshotEvery = 1 << 30
	r, err := s.NewRun()
	if err != nil {
		return Output{}, err
	}
	if err := r.Start(context.Background()); err != nil {
		return Output{}, err
	}
	return r.Output()
}

// EstimateDensity runs the paper's Algorithm 1 for t rounds on w and
// returns each agent's density estimate c/t. Theorem 1 bounds the
// error on the two-dimensional torus.
//
// Deprecated: use DensitySpec and Run for cancellation and live
// snapshots; this wrapper produces bit-identical output.
func EstimateDensity(w *World, t int, opts ...EstimatorOption) ([]float64, error) {
	out, err := runShim(DensitySpec(WithWorld(w), WithRounds(t), WithEstimatorOptions(opts...)))
	if err != nil {
		return nil, err
	}
	return out.Estimates, nil
}

// EstimateDensityIndependent runs the Appendix A independent-sampling
// baseline (Algorithm 4).
//
// Deprecated: use IndependentSpec and Run; this wrapper produces
// bit-identical output.
func EstimateDensityIndependent(w *World, t int, seed uint64) ([]float64, error) {
	out, err := runShim(IndependentSpec(WithWorld(w), WithRounds(t), WithPolicySeed(seed)))
	if err != nil {
		return nil, err
	}
	return out.Estimates, nil
}

// PropertyResult is the per-agent output of EstimatePropertyFrequency.
type PropertyResult = core.PropertyResult

// EstimatePropertyFrequency implements the Section 5.2 swarm
// computation of relative property frequency f_P = d_P/d. Tag agents
// with w.SetTagged first.
//
// Deprecated: use PropertySpec (with WithTaggedCount or
// WithTaggedAgents) and Run; this wrapper produces bit-identical
// output.
func EstimatePropertyFrequency(w *World, t int, opts ...EstimatorOption) (*PropertyResult, error) {
	out, err := runShim(PropertySpec(WithWorld(w), WithRounds(t), WithEstimatorOptions(opts...)))
	if err != nil {
		return nil, err
	}
	return out.Property, nil
}

// StreamingEstimator is an incremental Algorithm 1 with anytime
// confidence intervals and threshold decisions (Section 6.2).
type StreamingEstimator = core.StreamingEstimator

// NewStreamingEstimator returns a streaming estimator; c1 is the
// Theorem 1 constant used for its confidence bands (0.35 matches the
// repository's empirical calibration; larger is more conservative).
func NewStreamingEstimator(c1 float64) (*StreamingEstimator, error) {
	return core.NewStreamingEstimator(c1)
}

// RequiredRounds returns Theorem 1's sufficient round count for a
// (1 +- eps) density estimate with probability 1-delta at density d
// on the two-dimensional torus, with the universal constant set to
// c2.
func RequiredRounds(eps, delta, d, c2 float64) int {
	return core.TheoremOneRounds(eps, delta, d, c2)
}

// QuorumDecide has each agent of w vote on whether the density
// reaches threshold after t rounds of encounter counting (Section
// 6.2).
//
// Deprecated: use QuorumSpec and Run; this wrapper produces
// bit-identical output.
func QuorumDecide(w *World, threshold float64, t int) ([]bool, error) {
	out, err := runShim(QuorumSpec(threshold, WithWorld(w), WithRounds(t)))
	if err != nil {
		return nil, err
	}
	return out.Votes, nil
}

// QuorumAnytimeResult is the output of QuorumDecideAdaptive: per-agent
// decisions and stopping rounds.
type QuorumAnytimeResult = quorum.AnytimeResult

// QuorumDecideAdaptive is the anytime counterpart of QuorumDecide:
// every agent runs its own confidence band (with Theorem 1 constant
// c1; see NewStreamingEstimator) and stops as soon as the band clears
// the threshold in either direction, up to maxRounds (Section 6.2's
// early-exit usage). The simulation stops stepping once all agents
// have decided.
// Deprecated: use AdaptiveQuorumSpec and Run; this wrapper produces
// bit-identical output.
func QuorumDecideAdaptive(w *World, threshold, delta, c1 float64, maxRounds int) (*QuorumAnytimeResult, error) {
	if c1 <= 0 {
		// Preserve the v1 contract: 0 is an error here, not a request
		// for the v2 default.
		return nil, fmt.Errorf("core: c1 must be positive, got %v", c1)
	}
	if delta == 0 {
		return nil, fmt.Errorf("quorum: delta must be in (0, 1), got %v", delta)
	}
	s := AdaptiveQuorumSpec(threshold, WithWorld(w), WithRounds(maxRounds))
	s.Delta, s.C1 = delta, c1
	out, err := runShim(s)
	if err != nil {
		return nil, err
	}
	return out.Anytime, nil
}

// NetworkSizeConfig configures EstimateNetworkSize.
type NetworkSizeConfig = netsize.Config

// NetworkSizeResult is the output of EstimateNetworkSize.
type NetworkSizeResult = netsize.Result

// EstimateNetworkSize runs the Section 5.1 pipeline on g: burn-in,
// average-degree estimation (Algorithm 3), then multi-round
// degree-weighted collision counting (Algorithm 2, Theorem 27).
//
// Deprecated: use NetworkSizeSpec and Run; this wrapper produces
// bit-identical output.
func EstimateNetworkSize(g Graph, cfg NetworkSizeConfig) (*NetworkSizeResult, error) {
	s := &Spec{
		Kind:          KindNetworkSize,
		Graph:         g,
		Walkers:       cfg.Walkers,
		Rounds:        cfg.Steps,
		BurnIn:        cfg.BurnIn,
		Delta:         cfg.Delta, // 0 keeps netsize's own 0.1 default
		Seed:          cfg.Seed,
		SeedVertex:    cfg.SeedVertex,
		Stationary:    cfg.Stationary,
		SnapshotEvery: 1,
		netProgress:   cfg.Progress,
	}
	out, err := runShim(s)
	if err != nil {
		return nil, err
	}
	return out.NetworkSize, nil
}
