package quorum

import (
	"math"
	"testing"

	"antdensity/internal/sim"
	"antdensity/internal/topology"
)

func TestDecideSeparatesDensities(t *testing.T) {
	// theta = 0.1; worlds at d = 0.2 should mostly vote yes, worlds
	// at d = 0.05 mostly no.
	g := topology.MustTorus(2, 20) // A = 400
	const threshold = 0.1
	votesAt := func(agents int, seed uint64) float64 {
		var yes, all int
		for trial := 0; trial < 4; trial++ {
			w := sim.MustWorld(sim.Config{Graph: g, NumAgents: agents, Seed: seed + uint64(trial)})
			votes, err := Decide(w, threshold, 3000)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range votes {
				all++
				if v {
					yes++
				}
			}
		}
		return float64(yes) / float64(all)
	}
	high := votesAt(81, 10) // d = 0.2
	low := votesAt(21, 20)  // d = 0.05
	if high < 0.85 {
		t.Errorf("high-density yes fraction = %v, want > 0.85", high)
	}
	if low > 0.15 {
		t.Errorf("low-density yes fraction = %v, want < 0.15", low)
	}
}

func TestDecideValidation(t *testing.T) {
	g := topology.MustTorus(2, 10)
	w := sim.MustWorld(sim.Config{Graph: g, NumAgents: 2, Seed: 1})
	if _, err := Decide(w, 0, 10); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := Decide(w, 0.1, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestDetectionRoundsThresholdScaling(t *testing.T) {
	// Halving the threshold should roughly double the rounds (up to
	// log factors) — t depends on theta, not on the unknown d.
	lo := DetectionRounds(0.05, 0.2, 0.05, 1)
	hi := DetectionRounds(0.1, 0.2, 0.05, 1)
	if lo <= hi {
		t.Errorf("rounds at theta=0.05 (%d) not above theta=0.1 (%d)", lo, hi)
	}
	ratio := float64(lo) / float64(hi)
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("rounds ratio = %v, want ~2 up to logs", ratio)
	}
}

func TestMajorityVote(t *testing.T) {
	tests := []struct {
		name  string
		votes []bool
		want  bool
	}{
		{name: "empty", votes: nil, want: false},
		{name: "unanimous yes", votes: []bool{true, true}, want: true},
		{name: "tie is no", votes: []bool{true, false}, want: false},
		{name: "majority yes", votes: []bool{true, true, false}, want: true},
		{name: "majority no", votes: []bool{true, false, false}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MajorityVote(tt.votes); got != tt.want {
				t.Errorf("MajorityVote(%v) = %v, want %v", tt.votes, got, tt.want)
			}
		})
	}
}

func TestVoteFraction(t *testing.T) {
	if got := VoteFraction(nil); got != 0 {
		t.Errorf("empty VoteFraction = %v", got)
	}
	if got := VoteFraction([]bool{true, false, true, true}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("VoteFraction = %v, want 0.75", got)
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0.1, 0.2, 5); err == nil {
		t.Error("exit > enter accepted")
	}
	if _, err := NewDetector(0.1, 0, 5); err == nil {
		t.Error("zero exit accepted")
	}
	if _, err := NewDetector(0.1, 0.05, 0); err == nil {
		t.Error("zero warmup accepted")
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d, err := NewDetector(0.5, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup round: even a huge count must not trigger.
	if d.Observe(10) {
		t.Fatal("triggered during warmup")
	}
	// Estimate now 10/1... after round 2 with count 0: est 5.0 >= 0.5
	if !d.Observe(0) {
		t.Fatal("did not enter quorum after warmup with high estimate")
	}
	// Feed zeros; estimate decays toward 0 and must cross exit=0.25
	// before the state drops.
	dropped := false
	for i := 0; i < 100; i++ {
		in := d.Observe(0)
		if !in {
			dropped = true
			if est := d.Estimate(); est >= 0.25 {
				t.Fatalf("dropped at estimate %v, above exit threshold", est)
			}
			break
		}
		// While still in quorum the estimate must be above exit.
		if est := d.Estimate(); est < 0.25 {
			t.Fatalf("estimate %v below exit but still in quorum after update", est)
		}
	}
	if !dropped {
		t.Fatal("never exited quorum on all-zero stream")
	}
}

func TestDetectorEstimateAndReset(t *testing.T) {
	d, err := NewDetector(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Estimate() != 0 {
		t.Error("fresh estimate not 0")
	}
	d.Observe(3)
	d.Observe(1)
	if got := d.Estimate(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Estimate = %v, want 2", got)
	}
	if d.Rounds() != 2 {
		t.Errorf("Rounds = %d, want 2", d.Rounds())
	}
	d.Reset()
	if d.Rounds() != 0 || d.Estimate() != 0 || d.InQuorum() {
		t.Error("Reset did not clear state")
	}
}

func TestDetectorPanicsOnNegativeCount(t *testing.T) {
	d, err := NewDetector(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	d.Observe(-1)
}

func TestDetectionCurveMonotone(t *testing.T) {
	// P[declare quorum] should increase with the density ratio and be
	// near 0 / 1 at the extremes.
	curve, err := DetectionCurve(20, 0.1, 1500, []float64{0.3, 1.0, 2.5}, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0] > 0.25 {
		t.Errorf("P at ratio 0.3 = %v, want < 0.25", curve[0])
	}
	if curve[2] < 0.75 {
		t.Errorf("P at ratio 2.5 = %v, want > 0.75", curve[2])
	}
	if !(curve[0] < curve[1] && curve[1] < curve[2]) {
		t.Errorf("detection curve not monotone: %v", curve)
	}
}
