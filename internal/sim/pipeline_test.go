package sim

import (
	"testing"

	"antdensity/internal/rng"
	"antdensity/internal/topology"
)

// countAccumulator is a minimal fixed-horizon observer: it sums every
// agent's counts, mirroring Algorithm 1's counting loop.
type countAccumulator struct {
	totals []int64
	rounds int
}

func (c *countAccumulator) Observe(r *Round) Signal {
	for i, v := range r.Counts() {
		c.totals[i] += int64(v)
	}
	c.rounds++
	return Continue
}

func TestRunMatchesScalarLoop(t *testing.T) {
	// The pipeline must reproduce, bit for bit, the scalar
	// Step-then-Count-per-agent loop it replaces, on both index
	// representations.
	for _, occ := range []OccupancyIndex{OccDense, OccSparse} {
		g := topology.MustTorus(2, 16)
		w1 := MustWorld(Config{Graph: g, NumAgents: 96, Seed: 3, Occupancy: occ})
		w2 := MustWorld(Config{Graph: g, NumAgents: 96, Seed: 3, Occupancy: occ})
		const rounds = 40
		acc := &countAccumulator{totals: make([]int64, 96)}
		if got := Run(w1, rounds, acc); got != rounds {
			t.Fatalf("occ=%v: Run executed %d rounds, want %d", occ, got, rounds)
		}
		want := make([]int64, 96)
		for r := 0; r < rounds; r++ {
			w2.Step()
			for i := 0; i < 96; i++ {
				want[i] += int64(w2.Count(i))
			}
		}
		for i := range want {
			if acc.totals[i] != want[i] {
				t.Fatalf("occ=%v agent %d: pipeline total %d != scalar %d", occ, i, acc.totals[i], want[i])
			}
		}
	}
}

func TestCountsIntoMatchAllVariants(t *testing.T) {
	// Property: the Into snapshots agree exactly with their allocating
	// twins and with the comparison-based sorted ablation, for tagged
	// and grouped populations on both index representations.
	for _, occ := range []OccupancyIndex{OccDense, OccSparse} {
		g := topology.MustTorus(2, 8) // 64 nodes, 150 agents: dense collisions
		w := MustWorld(Config{Graph: g, NumAgents: 150, Seed: 11, Occupancy: occ})
		for i := 0; i < 150; i += 3 {
			w.SetTagged(i, true)
		}
		for i := 0; i < 150; i += 4 {
			w.SetGroup(i, 2)
		}
		bufC, bufT, bufG := make([]int, 150), make([]int, 150), make([]int, 150)
		for round := 0; round < 10; round++ {
			w.Step()
			checks := []struct {
				name         string
				into, sorted []int
			}{
				{"counts", w.CountsAllInto(bufC), w.CountsAllSorted()},
				{"tagged", w.CountsTaggedAllInto(bufT), w.CountsTaggedAllSorted()},
				{"group", w.CountsInGroupInto(2, bufG), w.CountsInGroupAllSorted(2)},
			}
			for _, c := range checks {
				for i := range c.sorted {
					if c.into[i] != c.sorted[i] {
						t.Fatalf("occ=%v round %d %s agent %d: Into %d != sorted %d",
							occ, round, c.name, i, c.into[i], c.sorted[i])
					}
				}
			}
		}
	}
}

func TestCountsIntoPanicsOnShortDst(t *testing.T) {
	w := MustWorld(Config{Graph: topology.MustTorus(2, 4), NumAgents: 5, Seed: 1})
	for name, f := range map[string]func(){
		"CountsAllInto":       func() { w.CountsAllInto(make([]int, 4)) },
		"CountsTaggedAllInto": func() { w.CountsTaggedAllInto(make([]int, 4)) },
		"CountsInGroupInto":   func() { w.CountsInGroupInto(1, make([]int, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a short dst", name)
				}
			}()
			f()
		}()
	}
}

func TestRoundGroupCountsMultipleGroupsSameRound(t *testing.T) {
	// Reading two groups in one Observe call must return two live
	// slices: the first group's data survives the second request.
	w := MustWorld(Config{Graph: topology.MustTorus(2, 6), NumAgents: 60, Seed: 8})
	for i := 0; i < 30; i++ {
		w.SetGroup(i, 2)
	}
	for i := 30; i < 60; i++ {
		w.SetGroup(i, 3)
	}
	obs := ObserverFunc(func(r *Round) Signal {
		a := r.GroupCounts(2)
		b := r.GroupCounts(3)
		wantA := r.World().CountsInGroupAll(2)
		wantB := r.World().CountsInGroupAll(3)
		for i := range wantA {
			if a[i] != wantA[i] || b[i] != wantB[i] {
				t.Fatalf("round %d agent %d: group snapshots diverged (a %d vs %d, b %d vs %d)",
					r.Index(), i, a[i], wantA[i], b[i], wantB[i])
			}
		}
		return Continue
	})
	Run(w, 5, obs)
}

func TestRunObserverOrderInvariance(t *testing.T) {
	// The determinism invariant: listing observers in any order yields
	// identical per-observer results, because observers cannot
	// influence stepping or snapshots.
	results := func(seed uint64, swap bool) ([]int64, []int64) {
		w := MustWorld(Config{Graph: topology.MustTorus(2, 10), NumAgents: 50, Seed: seed})
		w.SetTagged(7, true)
		a := &countAccumulator{totals: make([]int64, 50)}
		b := &countAccumulator{totals: make([]int64, 50)}
		if swap {
			Run(w, 30, b, a)
		} else {
			Run(w, 30, a, b)
		}
		return a.totals, b.totals
	}
	a1, b1 := results(5, false)
	a2, b2 := results(5, true)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatalf("agent %d: observer order changed results (a %d vs %d, b %d vs %d)",
				i, a1[i], a2[i], b1[i], b2[i])
		}
	}
}

func TestRunEarlyStopSemantics(t *testing.T) {
	w := MustWorld(Config{Graph: topology.MustTorus(2, 10), NumAgents: 20, Seed: 1})
	// One observer stops at round 5, the other at round 12: the run
	// ends when the *last* observer stops, and a stopped observer sees
	// no further rounds.
	seenA, seenB := 0, 0
	a := ObserverFunc(func(r *Round) Signal {
		seenA++
		if r.Index() >= 5 {
			return Stop
		}
		return Continue
	})
	b := ObserverFunc(func(r *Round) Signal {
		seenB++
		if r.Index() >= 12 {
			return Stop
		}
		return Continue
	})
	if got := Run(w, 100, a, b); got != 12 {
		t.Errorf("Run executed %d rounds, want 12", got)
	}
	if seenA != 5 || seenB != 12 {
		t.Errorf("observer rounds seen = (%d, %d), want (5, 12)", seenA, seenB)
	}
}

func TestRunDeactivationStopsRun(t *testing.T) {
	const agents = 8
	w := MustWorld(Config{Graph: topology.MustTorus(2, 10), NumAgents: agents, Seed: 2})
	// Retire one agent per round; the run must end at round 8 without
	// any observer returning Stop, and the mask must shrink monotonely.
	obs := ObserverFunc(func(r *Round) Signal {
		i := r.Index() - 1
		if !r.Active(i) {
			t.Fatalf("agent %d inactive before deactivation", i)
		}
		r.Deactivate(i)
		r.Deactivate(i) // idempotent
		if want := agents - r.Index(); r.NumActive() != want {
			t.Fatalf("round %d: NumActive = %d, want %d", r.Index(), r.NumActive(), want)
		}
		return Continue
	})
	if got := Run(w, 100, obs); got != agents {
		t.Errorf("Run executed %d rounds, want %d", got, agents)
	}
}

func TestRunZeroRoundsAndNegativePanic(t *testing.T) {
	w := MustWorld(Config{Graph: topology.MustTorus(2, 4), NumAgents: 3, Seed: 1})
	if got := Run(w, 0); got != 0 {
		t.Errorf("Run(w, 0) = %d, want 0", got)
	}
	if w.Round() != 0 {
		t.Errorf("world stepped during a zero-round run")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative rounds did not panic")
		}
	}()
	Run(w, -1)
}

func TestRunWithoutObserversJustSteps(t *testing.T) {
	w := MustWorld(Config{Graph: topology.MustTorus(2, 4), NumAgents: 3, Seed: 1})
	if got := Run(w, 7); got != 7 {
		t.Errorf("observerless Run executed %d rounds, want 7", got)
	}
	if w.Round() != 7 {
		t.Errorf("world at round %d, want 7", w.Round())
	}
}

func TestWorldExplicitStateConfig(t *testing.T) {
	g := topology.MustTorus(2, 6)
	// Positions + Streams supplied externally must reproduce a
	// seed-derived world exactly: same positions, same trajectory.
	w1 := MustWorld(Config{Graph: g, NumAgents: 10, Seed: 4})
	root := rng.New(4)
	streams := make([]rng.Stream, 10)
	for i := range streams {
		streams[i] = root.SplitValue(uint64(i))
		// Consume the placement draw exactly as UniformPlacement does.
		topology.RandomNode(g, &streams[i])
	}
	w2 := MustWorld(Config{Graph: g, NumAgents: 10, Positions: w1.Positions(), Streams: streams})
	for r := 0; r < 20; r++ {
		w1.Step()
		w2.Step()
	}
	for i := 0; i < 10; i++ {
		if w1.Pos(i) != w2.Pos(i) {
			t.Fatalf("agent %d diverged: seed-derived %d vs explicit-state %d", i, w1.Pos(i), w2.Pos(i))
		}
	}
	// Length validation.
	if _, err := NewWorld(Config{Graph: g, NumAgents: 3, Positions: []int64{0}}); err == nil {
		t.Error("short Positions accepted")
	}
	if _, err := NewWorld(Config{Graph: g, NumAgents: 3, Streams: make([]rng.Stream, 1)}); err == nil {
		t.Error("short Streams accepted")
	}
	// Out-of-range explicit positions are rejected.
	if _, err := NewWorld(Config{Graph: g, NumAgents: 1, Positions: []int64{g.NumNodes()}, Streams: make([]rng.Stream, 1)}); err == nil {
		t.Error("out-of-range Positions accepted")
	}
}
