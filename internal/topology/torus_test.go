package topology

import (
	"testing"
	"testing/quick"

	"antdensity/internal/rng"
)

func TestNewTorusValidation(t *testing.T) {
	tests := []struct {
		name    string
		dims    int
		side    int64
		wantErr bool
	}{
		{name: "ring", dims: 1, side: 10, wantErr: false},
		{name: "grid", dims: 2, side: 100, wantErr: false},
		{name: "zero dims", dims: 0, side: 10, wantErr: true},
		{name: "negative dims", dims: -1, side: 10, wantErr: true},
		{name: "side one", dims: 2, side: 1, wantErr: true},
		{name: "overflow", dims: 10, side: 1 << 20, wantErr: true},
		{name: "huge 2d ok", dims: 2, side: 1 << 31, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTorus(tt.dims, tt.side)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewTorus(%d, %d) error = %v, wantErr %v", tt.dims, tt.side, err, tt.wantErr)
			}
		})
	}
}

func TestTorusNumNodes(t *testing.T) {
	tests := []struct {
		dims int
		side int64
		want int64
	}{
		{1, 7, 7},
		{2, 5, 25},
		{3, 4, 64},
		{4, 3, 81},
	}
	for _, tt := range tests {
		g := MustTorus(tt.dims, tt.side)
		if got := g.NumNodes(); got != tt.want {
			t.Errorf("Torus(%d, %d).NumNodes() = %d, want %d", tt.dims, tt.side, got, tt.want)
		}
	}
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	g := MustTorus(3, 5)
	for v := int64(0); v < g.NumNodes(); v++ {
		coords := g.Coords(v)
		if got := g.Node(coords...); got != v {
			t.Fatalf("Node(Coords(%d)) = %d", v, got)
		}
	}
}

func TestTorusNodeReducesModSide(t *testing.T) {
	g := MustTorus(2, 10)
	if got, want := g.Node(12, -3), g.Node(2, 7); got != want {
		t.Errorf("Node(12, -3) = %d, want %d", got, want)
	}
}

func TestTorusNeighborsAreAdjacent(t *testing.T) {
	g := MustTorus(2, 6)
	for v := int64(0); v < g.NumNodes(); v++ {
		cv := g.Coords(v)
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			cu := g.Coords(u)
			diffs := 0
			for dim := range cv {
				d := cu[dim] - cv[dim]
				if d != 0 {
					if d != 1 && d != -1 && d != g.Side()-1 && d != -(g.Side()-1) {
						t.Fatalf("neighbor %d of %d changes dim %d by %d", u, v, dim, d)
					}
					diffs++
				}
			}
			if diffs != 1 {
				t.Fatalf("neighbor %d of %d changes %d coordinates", u, v, diffs)
			}
		}
	}
}

func TestTorusNeighborSymmetry(t *testing.T) {
	// +dim and -dim neighbors are inverse: stepping +1 then -1 returns.
	g := MustTorus(3, 4)
	for v := int64(0); v < g.NumNodes(); v++ {
		for dim := 0; dim < g.Dims(); dim++ {
			plus := g.Neighbor(v, 2*dim)
			back := g.Neighbor(plus, 2*dim+1)
			if back != v {
				t.Fatalf("(+%d then -%d) from %d landed at %d", dim, dim, v, back)
			}
		}
	}
}

func TestTorusNeighborPanics(t *testing.T) {
	g := MustTorus(2, 4)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"bad node", func() { g.Neighbor(-1, 0) }},
		{"node too large", func() { g.Neighbor(g.NumNodes(), 0) }},
		{"bad index", func() { g.Neighbor(0, 4) }},
		{"negative index", func() { g.Neighbor(0, -1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestTorusWrapAround(t *testing.T) {
	g := MustTorus(1, 5)
	// node 4 + 1 wraps to 0; node 0 - 1 wraps to 4.
	if got := g.Neighbor(4, 0); got != 0 {
		t.Errorf("Neighbor(4, +) = %d, want 0", got)
	}
	if got := g.Neighbor(0, 1); got != 4 {
		t.Errorf("Neighbor(0, -) = %d, want 4", got)
	}
}

func TestTorusDisplacement(t *testing.T) {
	g := MustTorus(2, 10)
	tests := []struct {
		a, b []int64
		want []int64
	}{
		{[]int64{0, 0}, []int64{1, 0}, []int64{1, 0}},
		{[]int64{0, 0}, []int64{9, 0}, []int64{-1, 0}},
		{[]int64{5, 5}, []int64{0, 0}, []int64{5, 5}}, // exactly half wraps to +5
		{[]int64{2, 3}, []int64{2, 3}, []int64{0, 0}},
	}
	for _, tt := range tests {
		got := g.Displacement(g.Node(tt.a...), g.Node(tt.b...))
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Displacement(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
				break
			}
		}
	}
}

func TestTorusHugeSideNoOverflow(t *testing.T) {
	g := MustTorus(2, 1<<31)
	v := g.Node(0, 0)
	u := g.Neighbor(v, 1) // -x wraps to side-1
	if got := g.Coords(u)[0]; got != 1<<31-1 {
		t.Errorf("wrap on huge torus: coord = %d", got)
	}
}

func TestTorusRandomWalkStaysInRange(t *testing.T) {
	g := MustTorus(2, 50)
	s := rng.New(1)
	v := RandomNode(g, s)
	for i := 0; i < 10000; i++ {
		v = RandomStep(g, v, s)
		if v < 0 || v >= g.NumNodes() {
			t.Fatalf("walk left node range: %d", v)
		}
	}
}

func TestTorusParityInvariant(t *testing.T) {
	// On an even-side torus the coordinate-sum parity flips each step
	// (the graph is bipartite): a walk returns to its origin only after
	// an even number of steps.
	g := MustTorus(2, 8)
	s := rng.New(2)
	start := g.Node(3, 3)
	v := start
	for step := 1; step <= 1001; step++ {
		v = RandomStep(g, v, s)
		if step%2 == 1 && v == start {
			t.Fatalf("returned to origin after odd step count %d", step)
		}
	}
}

func TestTorusPropertyNeighborCount(t *testing.T) {
	f := func(dims uint8, side uint8, node uint16) bool {
		k := int(dims%3) + 1
		l := int64(side%13) + 3
		g := MustTorus(k, l)
		v := int64(node) % g.NumNodes()
		if g.Degree(v) != 2*k {
			return false
		}
		// All neighbors distinct from v (side >= 3).
		for i := 0; i < g.Degree(v); i++ {
			if g.Neighbor(v, i) == v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingMatchesTorus1D(t *testing.T) {
	r, err := NewRing(12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dims() != 1 || r.NumNodes() != 12 || r.CommonDegree() != 2 {
		t.Errorf("ring(12): dims=%d nodes=%d degree=%d", r.Dims(), r.NumNodes(), r.CommonDegree())
	}
}

func TestWalkPath(t *testing.T) {
	g := MustTorus(2, 9)
	s := rng.New(3)
	path := WalkPath(g, g.Node(4, 4), 20, s)
	if len(path) != 21 {
		t.Fatalf("path length = %d, want 21", len(path))
	}
	for i := 1; i < len(path); i++ {
		adj := false
		for j := 0; j < g.Degree(path[i-1]); j++ {
			if g.Neighbor(path[i-1], j) == path[i] {
				adj = true
				break
			}
		}
		if !adj {
			t.Fatalf("path step %d: %d -> %d not adjacent", i, path[i-1], path[i])
		}
	}
}
