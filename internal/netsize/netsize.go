// Package netsize implements the paper's Section 5.1 application:
// estimating the size of a network reachable only through link
// queries, by running multiple random walks and counting their
// degree-weighted collisions over time (Algorithm 2), estimating the
// average degree by inverse-degree sampling (Algorithm 3), and
// burning in walks from a seed vertex per the Section 5.1.4 analysis.
// KatzirEstimate reimplements the [KLSC14] comparator that counts
// collisions only in the single round immediately after burn-in.
//
// Every vertex-neighborhood access is a "link query", the cost unit
// of the paper's Section 5.1.5 comparison; QueryCost reports the
// totals so the experiments can regenerate the query-tradeoff series.
package netsize

import (
	"context"
	"fmt"
	"math"
	"sort"

	"antdensity/internal/rng"
	"antdensity/internal/sim"
	"antdensity/internal/stats"
	"antdensity/internal/topology"
)

// Walkers is a set of random-walk positions on a graph, with link
// query accounting. The walks run on a sim.World, so every step takes
// the BulkStepper fast path on the arithmetic regular topologies and
// the per-round collision totals come from the world's incrementally
// maintained occupancy index instead of a per-round hash map. Stream
// derivation is preserved bit-for-bit from the historical scalar
// implementation (each walker's stream is a Split child of the caller
// stream), so estimates are unchanged for any fixed seed.
type Walkers struct {
	world   *sim.World
	queries int64
	counts  []int // scratch for bulk count snapshots
}

// graph returns the topology the walkers move on.
func (w *Walkers) graph() topology.Graph { return w.world.Graph() }

// newWalkers builds the backing world from explicitly derived
// positions and streams.
func newWalkers(g topology.Graph, pos []int64, streams []rng.Stream) (*Walkers, error) {
	world, err := sim.NewWorld(sim.Config{
		Graph:     g,
		NumAgents: len(pos),
		Positions: pos,
		Streams:   streams,
	})
	if err != nil {
		return nil, err
	}
	return &Walkers{world: world}, nil
}

// NewWalkersAtSeed starts n walkers at the given seed vertex — the
// realistic access model where only one vertex is known a priori.
func NewWalkersAtSeed(g topology.Graph, n int, seed int64, s *rng.Stream) (*Walkers, error) {
	if n < 2 {
		return nil, fmt.Errorf("netsize: need >= 2 walkers, got %d", n)
	}
	if seed < 0 || seed >= g.NumNodes() {
		return nil, fmt.Errorf("netsize: seed vertex %d out of range [0, %d)", seed, g.NumNodes())
	}
	pos := make([]int64, n)
	streams := make([]rng.Stream, n)
	for i := range pos {
		pos[i] = seed
		streams[i] = s.SplitValue(uint64(i))
	}
	return newWalkers(g, pos, streams)
}

// NewWalkersStationary starts n walkers at independent samples from
// the network's stable distribution (probability proportional to
// degree) — the idealized model analyzed first in Section 5.1.2.
// It materializes a cumulative-degree table of length A.
func NewWalkersStationary(g topology.Graph, n int, s *rng.Stream) (*Walkers, error) {
	if n < 2 {
		return nil, fmt.Errorf("netsize: need >= 2 walkers, got %d", n)
	}
	a := g.NumNodes()
	cum := make([]int64, a+1)
	for v := int64(0); v < a; v++ {
		cum[v+1] = cum[v] + int64(g.Degree(v))
	}
	total := cum[a]
	if total == 0 {
		return nil, fmt.Errorf("netsize: graph has no edges")
	}
	pos := make([]int64, n)
	streams := make([]rng.Stream, n)
	for i := range pos {
		r := int64(s.Uint64n(uint64(total)))
		// Find v with cum[v] <= r < cum[v+1]. The stream split must
		// happen after this walker's placement draw, reproducing the
		// historical derivation order exactly.
		pos[i] = int64(sort.Search(int(a), func(x int) bool { return cum[x+1] > r }))
		streams[i] = s.SplitValue(uint64(i))
	}
	return newWalkers(g, pos, streams)
}

// NumWalkers returns the number of walkers.
func (w *Walkers) NumWalkers() int { return w.world.NumAgents() }

// Positions returns a copy of the walker positions.
func (w *Walkers) Positions() []int64 { return w.world.Positions() }

// Queries returns the cumulative number of link queries issued so
// far. One query is charged per walker step (each step requires the
// current vertex's neighborhood).
func (w *Walkers) Queries() int64 { return w.queries }

// Step advances every walker one uniform random step, charging one
// link query per walker.
func (w *Walkers) Step() {
	w.world.Step()
	w.queries += int64(w.world.NumAgents())
}

// BurnIn advances all walkers m steps. With m >= the mixing-derived
// bound of Section 5.1.4 (see topology.MixingTime), the walker
// distribution is within total-variation delta of stationary.
func (w *Walkers) BurnIn(m int) {
	_ = w.BurnInContext(context.Background(), m, nil)
}

// BurnInContext is BurnIn with cooperative cancellation: it checks ctx
// between steps and returns ctx's error once cancelled, leaving the
// walkers on a round boundary. onRound, when non-nil, is invoked after
// every completed step (the facade's progress hook).
func (w *Walkers) BurnInContext(ctx context.Context, m int, onRound func()) error {
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w.Step()
		if onRound != nil {
			onRound()
		}
	}
	return nil
}

// scratch returns the reusable per-walker count buffer.
func (w *Walkers) scratch() []int {
	if w.counts == nil {
		w.counts = make([]int, w.world.NumAgents())
	}
	return w.counts
}

// weightedCollisions returns sum over walkers of
// count(position)/deg(position) for the current round — the
// degree-corrected collision total of Algorithm 2.
func (w *Walkers) weightedCollisions() float64 {
	return w.weightCounts(w.world.CountsAllInto(w.scratch()))
}

// weightCounts folds a bulk count snapshot into the degree-weighted
// collision total. Accumulation runs in walker-index order so the
// float sum is bit-identical across runs, and degrees are queried only
// for colliding walkers.
func (w *Walkers) weightCounts(counts []int) float64 {
	var sum float64
	for i, c := range counts {
		if c > 0 {
			sum += float64(c) / float64(w.graph().Degree(w.world.Pos(i)))
		}
	}
	return sum
}

// EstimateAvgDegree implements Algorithm 3: it returns
// D = (1/n) * sum_j 1/deg(w_j), an unbiased estimate of 1/degAvg when
// walkers are stationary (Theorem 31). No link queries are charged:
// the walkers' current degrees are known from the queries that
// brought them there.
func (w *Walkers) EstimateAvgDegree() float64 {
	n := w.world.NumAgents()
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / float64(w.graph().Degree(w.world.Pos(i)))
	}
	return sum / float64(n)
}

// Result is the output of a size estimation run.
type Result struct {
	// Size is the network size estimate A-tilde = 1/C.
	Size float64
	// C is the normalized weighted collision rate with expectation
	// 1/|V| (Lemma 28).
	C float64
	// InvAvgDegree is the Algorithm 3 estimate of 1/degAvg used in
	// the normalization.
	InvAvgDegree float64
	// Queries is the cumulative link queries consumed by the walkers,
	// including burn-in.
	Queries int64
}

// EstimateSize implements Algorithm 2: run the walkers t further
// steps, accumulate degree-weighted collisions each round, and return
// the size estimate
//
//	A-tilde = 1 / C,  C = degAvg * sum_j c_j / (n (n-1) t).
//
// If invAvgDegree > 0 it is used as the estimate of 1/degAvg
// (supplied, for instance, by a prior EstimateAvgDegree call);
// otherwise Algorithm 3 is invoked on the walkers' current positions.
// A zero collision total yields Size = +Inf; callers needing
// robustness should use MedianOfMeansSize or larger n^2 t.
func (w *Walkers) EstimateSize(t int, invAvgDegree float64) (*Result, error) {
	return w.EstimateSizeContext(context.Background(), t, invAvgDegree)
}

// EstimateSizeContext is EstimateSize with cooperative cancellation
// (see sim.RunContext) and optional extra observers riding along on
// the counting run (the facade's snapshot publisher); per the
// pipeline's determinism invariant they cannot change the estimate.
func (w *Walkers) EstimateSizeContext(ctx context.Context, t int, invAvgDegree float64, extra ...sim.Observer) (*Result, error) {
	if t < 1 {
		return nil, fmt.Errorf("netsize: step count must be >= 1, got %d", t)
	}
	if invAvgDegree <= 0 {
		invAvgDegree = w.EstimateAvgDegree()
	}
	// The counting loop is a pipeline observer: each observed round it
	// folds the shared bulk count snapshot into the weighted collision
	// total and charges the round's link queries.
	var total float64
	obs := append([]sim.Observer{sim.ObserverFunc(func(r *sim.Round) sim.Signal {
		w.queries += int64(w.world.NumAgents())
		total += w.weightCounts(r.Counts())
		return sim.Continue
	})}, extra...)
	if _, err := sim.RunContext(ctx, w.world, t, obs...); err != nil {
		return nil, err
	}
	n := float64(w.world.NumAgents())
	c := total / (invAvgDegree * n * (n - 1) * float64(t))
	return &Result{
		Size:         1 / c,
		C:            c,
		InvAvgDegree: invAvgDegree,
		Queries:      w.queries,
	}, nil
}

// KatzirEstimate reimplements the [KLSC14] baseline: walkers are
// halted where they stand (immediately after burn-in) and collisions
// are counted once, in that single configuration. The estimate is
//
//	A-tilde = 1 / C,  C = degAvg * sum_j c_j / (n (n-1)).
//
// Zero collisions yield +Inf, which is common unless n =
// Omega(sqrt(|V|)) — the weakness the paper's multi-round estimator
// addresses.
func (w *Walkers) KatzirEstimate(invAvgDegree float64) *Result {
	if invAvgDegree <= 0 {
		invAvgDegree = w.EstimateAvgDegree()
	}
	n := float64(w.world.NumAgents())
	c := w.weightedCollisions() / (invAvgDegree * n * (n - 1))
	return &Result{Size: 1 / c, C: c, InvAvgDegree: invAvgDegree, Queries: w.queries}
}

// Config bundles the parameters of a full size estimation pipeline.
type Config struct {
	// Walkers is the number of simultaneous random walks n.
	Walkers int
	// Steps is the collision counting horizon t.
	Steps int
	// BurnIn is the number of burn-in steps; if negative, it is
	// derived from the spectral gap via topology.MixingTime with
	// Delta.
	BurnIn int
	// Delta is the failure probability target used when deriving
	// burn-in automatically. Zero means 0.1.
	Delta float64
	// Seed drives all randomness.
	Seed uint64
	// SeedVertex is where walks begin. Ignored when Stationary.
	SeedVertex int64
	// Stationary skips burn-in and samples starts from the stable
	// distribution directly (the idealized Section 5.1.2 model).
	Stationary bool
	// Progress, when non-nil, is invoked after every walker round —
	// burn-in and collision counting alike — with the number of
	// completed rounds and the total planned. It is a pure observation
	// hook (the facade's Run snapshots attach here); the estimate is
	// unaffected.
	Progress func(done, total int)
}

// Estimate runs the full pipeline of Section 5.1 on g: start walkers,
// burn in (unless stationary), estimate the average degree by
// Algorithm 3, then the network size by Algorithm 2.
func Estimate(g topology.Graph, cfg Config) (*Result, error) {
	return EstimateContext(context.Background(), g, cfg)
}

// EstimateContext is Estimate with cooperative cancellation: the
// pipeline checks ctx on every round boundary (burn-in and counting)
// and returns ctx's error once cancelled.
func EstimateContext(ctx context.Context, g topology.Graph, cfg Config) (*Result, error) {
	if cfg.Delta == 0 {
		cfg.Delta = 0.1
	}
	root := rng.New(cfg.Seed)
	var w *Walkers
	var err error
	if cfg.Stationary {
		w, err = NewWalkersStationary(g, cfg.Walkers, root)
	} else {
		w, err = NewWalkersAtSeed(g, cfg.Walkers, cfg.SeedVertex, root)
	}
	if err != nil {
		return nil, err
	}
	burn := 0
	if !cfg.Stationary {
		burn = cfg.BurnIn
		if burn < 0 {
			lambda := topology.SpectralGap(g, 300, root.Split(1<<32))
			// The Section 5.1 analysis requires a connected,
			// non-bipartite network; lambda ~ 1 signals a (near-)
			// bipartite or disconnected graph on which no burn-in
			// length mixes the walk.
			if lambda > 0.9999 {
				return nil, fmt.Errorf("netsize: measured spectral value %.6f ~ 1; graph is (near-)bipartite or disconnected, burn-in cannot converge", lambda)
			}
			burn = topology.MixingTime(topology.NumEdges(g), lambda, cfg.Delta)
		}
	}
	total := burn + cfg.Steps
	done := 0
	tick := func() {
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, total)
		}
	}
	if burn > 0 {
		if err := w.BurnInContext(ctx, burn, tick); err != nil {
			return nil, err
		}
	}
	inv := w.EstimateAvgDegree()
	return w.EstimateSizeContext(ctx, cfg.Steps, inv, sim.ObserverFunc(func(r *sim.Round) sim.Signal {
		tick()
		return sim.Continue
	}))
}

// MedianOfMeansSize amplifies Estimate's constant success probability
// to high probability by running reps independent estimates and
// returning the median of their C values (inverted at the end), the
// amplification the paper describes in Section 5.1.2. Infinite
// estimates (zero collisions) are handled naturally: their C is 0 and
// participates in the median. The total query cost is also returned.
func MedianOfMeansSize(g topology.Graph, cfg Config, reps int) (size float64, queries int64, err error) {
	if reps < 1 {
		return 0, 0, fmt.Errorf("netsize: reps must be >= 1, got %d", reps)
	}
	cs := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		sub := cfg
		sub.Seed = cfg.Seed + uint64(r)*0x9e3779b97f4a7c15
		res, err := Estimate(g, sub)
		if err != nil {
			return 0, 0, err
		}
		cs = append(cs, res.C)
		queries += res.Queries
	}
	medianC := stats.Median(cs)
	if medianC == 0 {
		return math.Inf(1), queries, nil
	}
	return 1 / medianC, queries, nil
}

// TheoryWalkerCount returns the Theorem 27 walker requirement: for a
// (1 +- eps) size estimate with probability 1-delta using t steps,
// n^2 t = Theta((B(t)*degAvg + 1)/(eps^2 delta) * |V|); this solves
// for n with constant 1.
func TheoryWalkerCount(numNodes int64, bt, degAvg, eps, delta float64, t int) int {
	if t < 1 {
		panic(fmt.Sprintf("netsize: t must be >= 1, got %d", t))
	}
	if eps <= 0 || delta <= 0 {
		panic("netsize: eps and delta must be positive")
	}
	n2t := (bt*degAvg + 1) / (eps * eps * delta) * float64(numNodes)
	return int(math.Ceil(math.Sqrt(n2t / float64(t))))
}
