package sim

import (
	"fmt"

	"antdensity/internal/shard"
)

// OccupancyIndex selects the representation of the occupancy index
// that serves Count/CountTagged/CountInGroup queries; see the package
// documentation for the selection rule and maintenance strategy.
type OccupancyIndex int

const (
	// OccAuto picks OccDense when the graph's node count is at most
	// denseOccupancyMaxNodes, and OccSparse otherwise.
	OccAuto OccupancyIndex = iota
	// OccDense indexes occupancy with a flat []cell array of length
	// NumNodes — O(1) untyped-array lookups, 8 bytes per node.
	OccDense
	// OccSparse indexes occupancy with an open-addressed hash table
	// keyed by occupied node — memory proportional to the agent count,
	// for graphs far larger than the population traverses.
	OccSparse
)

// denseOccupancyMaxNodes is the OccAuto memory budget: up to 1<<22
// cells of 8 bytes each (32 MiB) may be spent on the dense array.
const denseOccupancyMaxNodes = 1 << 22

// denseOccupancyForceLimit caps an explicit Config{Occupancy: OccDense}
// request; beyond it the array itself would be unreasonably large
// (1<<26 cells = 512 MiB).
const denseOccupancyForceLimit = 1 << 26

// occupancy is the per-round collision-count index. mode is resolved
// to OccDense or OccSparse at construction; the backing storage for
// the dense mode is allocated lazily by the first rebuild, so worlds
// that never query counts pay nothing for it. group always holds the
// per-(position, group) counts for grouped agents in either mode.
type occupancy struct {
	mode   OccupancyIndex
	dense  []cell
	sparse *occTable
	group  map[groupKey]int32
}

// initOcc resolves and validates the index mode chosen by cfg. For a
// sharded world (part non-nil) the budget and force limits apply to
// the widest shard's node span rather than the whole graph, because
// each shard allocates its own dense slab — a 16M-node torus that is
// sparse flat becomes dense under 4+ shards, one of the structural
// wins of the decomposition.
func (w *World) initOcc(mode OccupancyIndex, agents int, part *shard.Partition) error {
	span := w.graph.NumNodes()
	if part != nil && part.K() >= 2 {
		span = 0
		for s := 0; s < part.K(); s++ {
			lo, hi := part.Bounds(s)
			if hi-lo > span {
				span = hi - lo
			}
		}
	}
	switch mode {
	case OccAuto:
		if span <= denseOccupancyMaxNodes {
			mode = OccDense
		} else {
			mode = OccSparse
		}
	case OccDense:
		if span > denseOccupancyForceLimit {
			return fmt.Errorf("sim: graph with %d nodes per shard is too large for a dense occupancy index (limit %d)", span, int64(denseOccupancyForceLimit))
		}
	case OccSparse:
	default:
		return fmt.Errorf("sim: unknown occupancy index selector %d", mode)
	}
	w.occ.mode = mode
	if mode == OccSparse && part == nil {
		w.occ.sparse = newOccTable(agents)
	}
	w.occ.group = make(map[groupKey]int32)
	return nil
}

// rebuildOcc refreshes the occupancy index from scratch. It runs only
// when the index is stale (initial placement); once built, stepping
// maintains the index incrementally via applyMoves and the index never
// goes stale again.
func (w *World) rebuildOcc() {
	if w.sh != nil {
		w.rebuildOccSharded()
		return
	}
	if w.occ.mode == OccDense && w.occ.dense == nil {
		w.occ.dense = make([]cell, w.graph.NumNodes())
	}
	if d := w.occ.dense; d != nil {
		clear(d)
		for i, p := range w.pos {
			d[p].total++
			if w.tagged[i] {
				d[p].tagged++
			}
		}
	} else {
		t := w.occ.sparse
		t.reset()
		for i, p := range w.pos {
			t.inc(p, w.tagged[i])
		}
	}
	// Always clear the group index: stale entries must not survive
	// the last member of a group being cleared.
	clear(w.occ.group)
	if len(w.numGroup) > 0 {
		for i, p := range w.pos {
			if g := w.groups[i]; g != 0 {
				w.occ.group[groupKey{pos: p, group: g}]++
			}
		}
	}
	w.occDirty = false
}

// applyMoves updates the occupancy index with this round's movement:
// for every agent whose position changed, decrement the cell it left
// and increment the cell it entered. Cost is O(agents) arithmetic with
// no rebuild, no clearing, and no steady-state allocation.
//
// The dense branch is a deliberately plain scatter. A cache-blocked
// variant (pack the round's ±1 deltas, counting-sort them by 64 KiB
// cell block, apply block by block — sound because the deltas
// commute) was implemented and measured for PR 8 and LOST at every
// reachable dense size, including the 1<<22-cell OccAuto maximum and
// a forced-dense 1<<24-cell array: the sort's three extra streaming
// passes cost more bandwidth than the scattered misses they save,
// because out-of-order execution already overlaps those misses.
// BENCH_PR8.json records the numbers; don't re-add blocking without
// beating them.
func (w *World) applyMoves() {
	anyGroups := len(w.numGroup) > 0
	if d := w.occ.dense; d != nil {
		for i, p := range w.pos {
			q := w.prev[i]
			if p == q {
				continue
			}
			d[q].total--
			d[p].total++
			if w.tagged[i] {
				d[q].tagged--
				d[p].tagged++
			}
			if anyGroups {
				if g := w.groups[i]; g != 0 {
					w.moveGroup(q, p, g)
				}
			}
		}
		return
	}
	t := w.occ.sparse
	for i, p := range w.pos {
		q := w.prev[i]
		if p == q {
			continue
		}
		tag := w.tagged[i]
		t.dec(q, tag)
		t.inc(p, tag)
		if anyGroups {
			if g := w.groups[i]; g != 0 {
				w.moveGroup(q, p, g)
			}
		}
	}
}

// moveGroup shifts one member of group g from node q to node p in the
// per-group index, deleting emptied entries.
func (w *World) moveGroup(q, p int64, g int32) {
	k := groupKey{pos: q, group: g}
	if n := w.occ.group[k] - 1; n == 0 {
		delete(w.occ.group, k)
	} else {
		w.occ.group[k] = n
	}
	w.occ.group[groupKey{pos: p, group: g}]++
}

// occCell returns the occupancy cell for node p from whichever
// representation is active, routing to the owning shard's slab in
// sharded mode.
func (w *World) occCell(p int64) cell {
	if w.sh != nil {
		return w.slabFor(p).cellAt(p)
	}
	if d := w.occ.dense; d != nil {
		return d[p]
	}
	return w.occ.sparse.get(p)
}
