package sim

import (
	"testing"

	"antdensity/internal/topology"
)

// TestStepParallelWorkerInvariance asserts that StepParallel(k) is
// bit-identical to Step for every worker count — positions, counts,
// and round counters — so parallel stepping can never change an
// experiment's numbers. Run under -race this also exercises the
// worker goroutines for data races.
func TestStepParallelWorkerInvariance(t *testing.T) {
	g := topology.MustTorus(2, 40)
	const agents = 600
	const rounds = 12
	for _, k := range []int{1, 2, 8} {
		k := k
		serial := MustWorld(Config{Graph: g, NumAgents: agents, Seed: 77})
		parallel := MustWorld(Config{Graph: g, NumAgents: agents, Seed: 77})
		for i := 0; i < agents; i += 7 {
			serial.SetTagged(i, true)
			parallel.SetTagged(i, true)
		}
		for r := 1; r <= rounds; r++ {
			serial.Step()
			parallel.StepParallel(k)
			sp, pp := serial.Positions(), parallel.Positions()
			sc, pc := serial.CountsAll(), parallel.CountsAll()
			st, pt := serial.CountsTaggedAll(), parallel.CountsTaggedAll()
			for i := 0; i < agents; i++ {
				if sp[i] != pp[i] {
					t.Fatalf("k=%d round %d agent %d: position %d != %d", k, r, i, pp[i], sp[i])
				}
				if sc[i] != pc[i] {
					t.Fatalf("k=%d round %d agent %d: count %d != %d", k, r, i, pc[i], sc[i])
				}
				if st[i] != pt[i] {
					t.Fatalf("k=%d round %d agent %d: tagged count %d != %d", k, r, i, pt[i], st[i])
				}
			}
			if serial.Round() != parallel.Round() {
				t.Fatalf("k=%d round %d: round counters %d != %d", k, r, parallel.Round(), serial.Round())
			}
		}
	}
}
