package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// This file holds the declarative parameter-grid layer: Axis (one
// experiment parameter dimension as data), Point (one cell of an axis
// cross-product), and Grid (the generic executor that replaced the
// per-experiment nested parameter loops). Axis values are canonical
// strings so the CLI sweep engine can override them without knowing
// each experiment's types; Point's typed accessors parse them back.

// AxisKind is the value type of an axis.
type AxisKind uint8

const (
	// AxisFloat values parse as float64 (densities, ratios).
	AxisFloat AxisKind = iota
	// AxisInt values parse as int (horizons, sizes, walker counts).
	AxisInt
	// AxisString values are categorical labels (topologies, variants).
	AxisString
)

// String names the kind for error messages.
func (k AxisKind) String() string {
	switch k {
	case AxisFloat:
		return "float"
	case AxisInt:
		return "int"
	default:
		return "string"
	}
}

// Axis declares one experiment parameter dimension as data.
type Axis struct {
	// Name identifies the axis in sweep overrides (e.g. "d", "steps").
	Name string
	// Kind is the value type; sweep overrides are validated against it.
	Kind AxisKind
	// Unit optionally names the axis unit for structured output.
	Unit string
	// Full are the default full-mode values; Quick (if non-nil)
	// replaces them in quick mode.
	Full  []string
	Quick []string
}

// FloatAxis declares a float-valued axis; quick may be nil to reuse
// the full values in quick mode.
func FloatAxis(name string, full, quick []float64) Axis {
	return Axis{Name: name, Kind: AxisFloat, Full: formatFloats(full), Quick: formatFloats(quick)}
}

// IntAxis declares an int-valued axis; quick may be nil to reuse the
// full values in quick mode.
func IntAxis(name string, full, quick []int) Axis {
	return Axis{Name: name, Kind: AxisInt, Full: formatInts(full), Quick: formatInts(quick)}
}

// IntRangeAxis declares an int-valued axis spanning [1, full] in full
// mode and [1, quick] in quick mode — the shape of the walk
// experiments' per-step tables.
func IntRangeAxis(name string, full, quick int) Axis {
	return Axis{Name: name, Kind: AxisInt, Full: formatInts(intRange(1, full)), Quick: formatInts(intRange(1, quick))}
}

// StringAxis declares a categorical axis; quick may be nil to reuse
// the full values in quick mode.
func StringAxis(name string, full, quick []string) Axis {
	return Axis{Name: name, Kind: AxisString, Full: full, Quick: quick}
}

// WithUnit returns a copy of the axis carrying the unit.
func (a Axis) WithUnit(unit string) Axis {
	a.Unit = unit
	return a
}

// Values returns the axis's value list for the given mode.
func (a Axis) Values(quick bool) []string {
	if quick && a.Quick != nil {
		return a.Quick
	}
	return a.Full
}

// Check validates that v parses under the axis's kind.
func (a Axis) Check(v string) error {
	switch a.Kind {
	case AxisFloat:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("experiments: axis %q value %q is not a float", a.Name, v)
		}
	case AxisInt:
		if _, err := strconv.Atoi(v); err != nil {
			return fmt.Errorf("experiments: axis %q value %q is not an int", a.Name, v)
		}
	}
	return nil
}

func formatFloats(vs []float64) []string {
	if vs == nil {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}

func formatInts(vs []int) []string {
	if vs == nil {
		return nil
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

func intRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// axisNames joins the axis names for error messages.
func axisNames(axes []Axis) string {
	names := make([]string, len(axes))
	for i, a := range axes {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Point is one cell of an axis cross-product: a value and a position
// for every axis. The typed accessors panic on unknown axis names or
// unparsable values — both programming errors, since sweep overrides
// are validated before the grid runs.
type Point struct {
	axes []Axis
	vals []string
	idx  []int      // position in the active (possibly overridden) value list
	act  [][]string // the active per-axis value lists of the whole grid
	reg  [][]string // the registered per-axis values for the run's mode
}

// Len returns the number of axes.
func (pt Point) Len() int { return len(pt.axes) }

// Axis returns the i-th axis declaration.
func (pt Point) Axis(i int) Axis { return pt.axes[i] }

// Value returns the i-th axis's canonical value string.
func (pt Point) Value(i int) string { return pt.vals[i] }

func (pt Point) lookup(name string) int {
	for i, a := range pt.axes {
		if a.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: point has no axis %q (axes: %s)", name, axisNames(pt.axes)))
}

// String returns the named axis's value.
func (pt Point) String(name string) string { return pt.vals[pt.lookup(name)] }

// ActiveValues returns the named axis's full active value list — the
// registered defaults or a sweep's override. Cells use it to size
// sweep-shared measurements (e.g. a Monte Carlo curve covering the
// largest horizon of the whole sweep) instead of re-measuring per
// cell. Callers must not mutate the returned slice.
func (pt Point) ActiveValues(name string) []string { return pt.act[pt.lookup(name)] }

// activeMaxInt returns the largest active value of the named int axis.
func activeMaxInt(pt Point, name string) int {
	i := pt.lookup(name)
	max := pt.Int(name)
	for _, v := range pt.act[i] {
		if n, err := strconv.Atoi(v); err == nil && n > max {
			max = n
		}
	}
	return max
}

// Float returns the named axis's value as a float64.
func (pt Point) Float(name string) float64 {
	i := pt.lookup(name)
	v, err := strconv.ParseFloat(pt.vals[i], 64)
	if err != nil {
		panic(fmt.Sprintf("experiments: axis %q value %q is not a float", name, pt.vals[i]))
	}
	return v
}

// Int returns the named axis's value as an int.
func (pt Point) Int(name string) int {
	i := pt.lookup(name)
	v, err := strconv.Atoi(pt.vals[i])
	if err != nil {
		panic(fmt.Sprintf("experiments: axis %q value %q is not an int", name, pt.vals[i]))
	}
	return v
}

// Index returns the named axis's position within the experiment's
// registered value list for the run's mode — NOT its position in a
// sweep's overridden list. Experiments that historically derived
// per-case seeds from the loop index use it, so full runs stay
// bit-identical to the pre-grid harness AND a subset sweep of
// registered values reproduces the exact numbers of the full run's
// table at the same points. A value outside the registered list falls
// back to its position in the active list (deterministic, but with no
// full-run twin to match).
func (pt Point) Index(name string) int {
	i := pt.lookup(name)
	for j, v := range pt.reg[i] {
		if v == pt.vals[i] {
			return j
		}
	}
	return pt.idx[i]
}

// Grid invokes fn once per point of the axes' cross-product, in
// row-major order (first axis slowest, last axis fastest) — exactly
// the nested-loop order the experiments used before their loops became
// data. The first error aborts the grid.
func Grid(p Params, axes []Axis, fn func(pt Point) error) error {
	values := make([][]string, len(axes))
	for i, a := range axes {
		values[i] = a.Values(p.Quick)
	}
	return gridOver(axes, values, values, fn)
}

// gridOver is Grid with explicit per-axis value lists (the sweep
// engine substitutes overridden active lists while keeping the
// registered lists for Point.Index).
func gridOver(axes []Axis, values, registered [][]string, fn func(pt Point) error) error {
	if len(axes) == 0 {
		return fmt.Errorf("experiments: grid needs at least one axis")
	}
	total := 1
	for i, vs := range values {
		if len(vs) == 0 {
			return fmt.Errorf("experiments: axis %q has no values", axes[i].Name)
		}
		total *= len(vs)
	}
	for n := 0; n < total; n++ {
		idx := make([]int, len(axes))
		vals := make([]string, len(axes))
		rem := n
		for i := len(axes) - 1; i >= 0; i-- {
			idx[i] = rem % len(values[i])
			rem /= len(values[i])
		}
		for i := range axes {
			vals[i] = values[i][idx[i]]
		}
		if err := fn(Point{axes: axes, vals: vals, idx: idx, act: values, reg: registered}); err != nil {
			return err
		}
	}
	return nil
}

// axisFloats returns an axis's active values parsed as floats.
func axisFloats(p Params, a Axis) []float64 {
	vs := a.Values(p.Quick)
	out := make([]float64, len(vs))
	for i, v := range vs {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			panic(fmt.Sprintf("experiments: axis %q value %q is not a float", a.Name, v))
		}
		out[i] = f
	}
	return out
}

// axisInts returns an axis's active values parsed as ints.
func axisInts(p Params, a Axis) []int {
	vs := a.Values(p.Quick)
	out := make([]int, len(vs))
	for i, v := range vs {
		n, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("experiments: axis %q value %q is not an int", a.Name, v))
		}
		out[i] = n
	}
	return out
}

// axisMaxInt returns the maximum active value of an int axis.
func axisMaxInt(p Params, a Axis) int {
	max := 0
	for _, v := range axisInts(p, a) {
		if v > max {
			max = v
		}
	}
	return max
}
