// Package topology provides the graph substrate for all random-walk
// simulations in this repository: k-dimensional tori (the paper's
// grid/torus model and its ring special case), hypercubes, complete
// graphs, random regular expanders, and explicit adjacency graphs for
// the social-network experiments. It also includes spectral and BFS
// utilities used to measure mixing parameters.
//
// All graphs expose node identifiers as int64 in [0, NumNodes()). The
// regular topologies (torus, hypercube, complete) compute neighbors
// arithmetically and thus support node counts far beyond available
// memory, which is how the paper's "A large" infinite-surface regime
// is realized.
package topology

import (
	"fmt"

	"antdensity/internal/rng"
)

// Graph is a finite undirected graph (possibly a multigraph) whose
// nodes are the integers [0, NumNodes()). Implementations must be safe
// for concurrent readers.
type Graph interface {
	// NumNodes returns the number of nodes A.
	NumNodes() int64
	// Degree returns the degree of node v, counting multi-edges with
	// multiplicity.
	Degree(v int64) int
	// Neighbor returns the i-th neighbor of v for 0 <= i < Degree(v).
	// The order is implementation-defined but fixed.
	Neighbor(v int64, i int) int64
}

// Regular is implemented by graphs whose nodes all share one degree.
type Regular interface {
	Graph
	// CommonDegree returns the degree shared by every node.
	CommonDegree() int
}

// RandomStep advances a random walk one step from v on g, choosing a
// uniformly random incident edge using the stream s.
func RandomStep(g Graph, v int64, s *rng.Stream) int64 {
	deg := g.Degree(v)
	if deg == 0 {
		return v
	}
	return g.Neighbor(v, s.Intn(deg))
}

// RandomNode returns a uniformly random node of g.
func RandomNode(g Graph, s *rng.Stream) int64 {
	return int64(s.Uint64n(uint64(g.NumNodes())))
}

// Walk performs an m-step random walk from v and returns the endpoint.
// The start node is validated once and the per-step dispatch is
// devirtualized for the regular topologies, so the walk runs an
// arithmetic-only, allocation-free inner loop; results are
// bit-identical to m RandomStep calls.
func Walk(g Graph, v int64, m int, s *rng.Stream) int64 {
	validateNode(g, v)
	switch t := g.(type) {
	case *Torus:
		deg := 2 * t.dims
		for i := 0; i < m; i++ {
			v = t.NeighborUnchecked(v, s.Intn(deg))
		}
	case *Hypercube:
		bits := t.bits
		for i := 0; i < m; i++ {
			v = t.NeighborUnchecked(v, s.Intn(bits))
		}
	case *Complete:
		deg := int(t.nodes - 1)
		for i := 0; i < m; i++ {
			v = t.NeighborUnchecked(v, s.Intn(deg))
		}
	case *Adj:
		for i := 0; i < m; i++ {
			v = t.RandomStepFrom(v, s)
		}
	default:
		for i := 0; i < m; i++ {
			v = RandomStep(g, v, s)
		}
	}
	return v
}

// WalkPath performs an m-step random walk from v and returns the full
// path of m+1 positions, beginning with v.
func WalkPath(g Graph, v int64, m int, s *rng.Stream) []int64 {
	validateNode(g, v)
	step := Stepper(g)
	path := make([]int64, m+1)
	path[0] = v
	for i := 1; i <= m; i++ {
		v = step(v, s)
		path[i] = v
	}
	return path
}

// NumEdges returns the number of undirected edges of g (multi-edges
// counted with multiplicity, self-loops counted once each), computed
// as half the degree sum. It takes O(A) time for irregular graphs and
// O(1) for Regular implementations.
func NumEdges(g Graph) int64 {
	if r, ok := g.(Regular); ok {
		return g.NumNodes() * int64(r.CommonDegree()) / 2
	}
	var sum int64
	for v := int64(0); v < g.NumNodes(); v++ {
		sum += int64(g.Degree(v))
	}
	return sum / 2
}

// ValidateNode panics if v is outside g's node range. Callers feeding
// externally supplied start nodes into the devirtualized kernels
// (Stepper, the bulk step methods), which skip per-step validation,
// should validate once up front with it.
func ValidateNode(g Graph, v int64) { validateNode(g, v) }

// validateNode panics if v is outside g's node range. Topology
// implementations use it to catch indexing bugs early in simulations.
func validateNode(g Graph, v int64) {
	if v < 0 || v >= g.NumNodes() {
		panic(fmt.Sprintf("topology: node %d out of range [0, %d)", v, g.NumNodes()))
	}
}
