package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sameJSON compares two raw payloads up to the compaction Marshal
// applies to json.RawMessage, so a spaced-out hand-edited payload
// still counts as round-tripped.
func sameJSON(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return bytes.Equal(a, b)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// FuzzOpenReduce throws arbitrary bytes at the replay path — the code
// that must survive kill -9 damage, hand edits, and glued lines — and
// checks the recovery invariants Open and Reduce document:
//
//   - Open never fails on content (only on I/O), never panics, and
//     always leaves the file append-ready (newline-terminated).
//   - Every replayed record re-Appends and replays back identically
//     (minus the wall-clock stamp), so recovery is idempotent.
//   - Reduce's entries have unique IDs, all of type submit, and
//     maxSeq dominates every folded record's Seq.
func FuzzOpenReduce(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"type\":\"submit\",\"id\":\"r1\",\"seq\":1,\"spec\":{\"kind\":\"collision\"}}\n"))
	f.Add([]byte("{\"type\":\"submit\",\"id\":\"r1\",\"seq\":1}\n{\"type\":\"terminal\",\"id\":\"r1\",\"state\":\"done\",\"result\":{\"n\":41}}\n"))
	f.Add([]byte("{\"type\":\"terminal\",\"id\":\"orphan\",\"state\":\"failed\",\"error\":\"boom\"}\n"))
	f.Add([]byte("{\"type\":\"submit\",\"id\":\"r2\",\"seq\":2}\n{\"type\":\"sub")) // torn final line
	f.Add([]byte("not json at all\n{\"type\":\"submit\",\"id\":\"r3\",\"seq\":3}\n"))
	f.Add([]byte("{\"type\":\"mystery\",\"id\":\"r4\"}\n{\"type\":\"submit\",\"id\":\"\"}\n"))
	f.Add([]byte(strings.Repeat("x", 100*1024) + "\n{\"type\":\"submit\",\"id\":\"after-wreck\",\"seq\":9}\n"))
	f.Add([]byte("\n\n   \n{\"type\":\"submit\",\"id\":\"ws\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, skipped, err := Open(dir)
		if err != nil {
			t.Fatalf("Open failed on pure content damage: %v", err)
		}
		j.Close()
		if skipped < 0 {
			t.Fatalf("negative skipped count %d", skipped)
		}

		entries, maxSeq, corrupt := Reduce(recs)
		if corrupt > len(recs) {
			t.Fatalf("corrupt %d exceeds record count %d", corrupt, len(recs))
		}
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			if e.Submit.Type != TypeSubmit || e.Submit.ID == "" {
				t.Fatalf("entry folded from non-submit record: %+v", e.Submit)
			}
			if seen[e.Submit.ID] {
				t.Fatalf("duplicate entry for id %q", e.Submit.ID)
			}
			seen[e.Submit.ID] = true
			if e.Terminal != nil && e.Terminal.Type != TypeTerminal {
				t.Fatalf("terminal slot holds %q record", e.Terminal.Type)
			}
		}
		for _, r := range recs {
			if (r.Type == TypeSubmit || r.Type == TypeTerminal) && r.ID != "" && r.Seq > maxSeq {
				t.Fatalf("maxSeq %d misses folded Seq %d", maxSeq, r.Seq)
			}
		}

		// Recovery is idempotent: re-append everything replayable and
		// replay again — same records (Append stamps empty Times).
		dir2 := t.TempDir()
		j2, _, _, err := Open(dir2)
		if err != nil {
			t.Fatal(err)
		}
		var wrote []Record
		for _, r := range recs {
			if r.Type == "" || r.ID == "" {
				continue // Append rejects these by contract
			}
			if err := j2.Append(r); err != nil {
				t.Fatalf("re-appending replayed record: %v", err)
			}
			wrote = append(wrote, r)
		}
		j2.Close()
		_, recs2, skipped2, err := Open(dir2)
		if err != nil {
			t.Fatal(err)
		}
		if skipped2 != 0 {
			t.Fatalf("re-appended journal has %d unparseable lines", skipped2)
		}
		if len(recs2) != len(wrote) {
			t.Fatalf("round trip lost records: wrote %d, replayed %d", len(wrote), len(recs2))
		}
		for i, got := range recs2 {
			want := wrote[i]
			if want.Time == "" {
				got.Time = "" // Append stamped it
			}
			if got.Type != want.Type || got.ID != want.ID || got.Seq != want.Seq ||
				got.Time != want.Time || got.State != want.State || got.Error != want.Error ||
				!sameJSON(got.Spec, want.Spec) || !sameJSON(got.Result, want.Result) ||
				!sameJSON(got.Snap, want.Snap) {
				t.Fatalf("record %d changed across append/replay:\nwrote    %+v\nreplayed %+v", i, want, got)
			}
		}
	})
}
