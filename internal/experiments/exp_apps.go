package experiments

import (
	"math"
	"strconv"

	"antdensity/internal/core"
	"antdensity/internal/expfmt"
	"antdensity/internal/quorum"
	"antdensity/internal/rng"
	"antdensity/internal/sensors"
	"antdensity/internal/sim"
	"antdensity/internal/stats"
	"antdensity/internal/tasks"
	"antdensity/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Quorum sensing: detection curve sharpens with t",
		Claim: "Section 6.2 / [Pra05]: threshold detection with t set by the quorum level, not the unknown density",
		Run:   runE19,
	})
	register(Experiment{
		ID:    "E20",
		Title: "Task allocation via per-task encounter rates",
		Claim: "Section 1 / [Gor99]: encounter-rate estimates drive convergence to a target worker allocation",
		Run:   runE20,
	})
	register(Experiment{
		ID:    "E21",
		Title: "Sensor-network token sampling vs independent sampling",
		Claim: "Section 6.3.1 / Corollary 15: revisit overhead on the 2-D grid is logarithmic, not polynomial",
		Run:   runE21,
	})
	register(Experiment{
		ID:    "E22",
		Title: "Non-uniform placement: local vs global density",
		Claim: "Sections 2.1.1 / 6.1: clustered agents break global estimation; short-horizon estimates track local density",
		Run:   runE22,
	})
	register(Experiment{
		ID:    "E24",
		Title: "Adaptive threshold detection with anytime confidence bands",
		Claim: "Section 6.2: agents detecting whether d exceeds a threshold can stop early; decision time shrinks as |d - theta| grows",
		Run:   runE24,
	})
}

func runE24(p Params) (*Outcome, error) {
	g := topology.MustTorus(2, 20) // A = 400
	const threshold = 0.1
	maxRounds := pick(p, 40000, 8000)
	trials := pick(p, 20, 8)
	ratios := []float64{0.25, 0.5, 2.0, 4.0}
	tb := expfmt.NewTable("d/theta", "correct decisions", "mean rounds to decide", "undecided")
	out := &Outcome{Metrics: map[string]float64{}}
	var meanRounds []float64
	for ri, ratio := range ratios {
		agents := int(ratio*threshold*float64(g.NumNodes())) + 1
		res, err := p.runTrials(TrialSpec{
			Name:   "E24",
			Trials: trials,
			Seed:   p.Seed + uint64(ri)<<20,
			Run: func(tr Trial) (TrialResult, error) {
				var r TrialResult
				w, err := sim.NewWorld(sim.Config{Graph: g, NumAgents: agents, Seed: tr.Seed})
				if err != nil {
					return r, err
				}
				est, err := core.NewStreamingEstimator(0.6)
				if err != nil {
					return r, err
				}
				decision := 0
				decidedAt := maxRounds
				for round := 1; round <= maxRounds; round++ {
					w.Step()
					est.Observe(w.Count(0))
					if v := est.AboveThreshold(threshold, 0.05); v != 0 {
						decision = v
						decidedAt = round
						break
					}
				}
				r.Set("decision", float64(decision))
				r.Set("rounds", float64(decidedAt))
				return r, nil
			},
		})
		if err != nil {
			return nil, err
		}
		want := -1.0
		if ratio > 1 {
			want = +1
		}
		correct, undecided := 0, 0
		var rounds []float64
		decisions := res.ValueSlice("decision")
		decidedAts := res.ValueSlice("rounds")
		for i, decision := range decisions {
			switch decision {
			case 0:
				undecided++
			case want:
				correct++
				rounds = append(rounds, decidedAts[i])
			default:
				// wrong decision: counted implicitly below
			}
		}
		mr := math.NaN()
		if len(rounds) > 0 {
			mr = stats.Mean(rounds)
		}
		tb.AddRow(ratio, correct, mr, undecided)
		out.Metrics[fmtRatioMetric("correct", ratio)] = float64(correct) / float64(trials)
		meanRounds = append(meanRounds, mr)
	}
	if err := tb.Render(p.out()); err != nil {
		return nil, err
	}
	// Decisions should be fastest at the extreme ratios.
	if !math.IsNaN(meanRounds[0]) && !math.IsNaN(meanRounds[1]) {
		out.Metrics["speedup_low"] = meanRounds[1] / meanRounds[0]
	}
	if !math.IsNaN(meanRounds[2]) && !math.IsNaN(meanRounds[3]) {
		out.Metrics["speedup_high"] = meanRounds[2] / meanRounds[3]
	}
	out.note(p.out(), "paper (Section 6.2): detection effort is set by the threshold and shrinks with the margin; decisions at 4x/0.25x theta come much faster than at 2x/0.5x")
	return out, nil
}

// fmtRatioMetric names per-ratio metrics like correct_0.25.
func fmtRatioMetric(prefix string, ratio float64) string {
	return prefix + "_" + strconv.FormatFloat(ratio, 'g', -1, 64)
}

func runE19(p Params) (*Outcome, error) {
	const threshold = 0.1
	ratios := []float64{0.25, 0.5, 0.75, 1.0, 1.33, 2.0, 4.0}
	trials := pick(p, 6, 2)
	tShort := pick(p, 300, 150)
	tLong := pick(p, 3000, 900)
	curveShort, err := quorum.DetectionCurve(20, threshold, tShort, ratios, trials, p.Seed)
	if err != nil {
		return nil, err
	}
	curveLong, err := quorum.DetectionCurve(20, threshold, tLong, ratios, trials, p.Seed+1)
	if err != nil {
		return nil, err
	}
	tb := expfmt.NewTable("d/theta", "P[quorum] short t", "P[quorum] long t")
	for i, r := range ratios {
		tb.AddRow(r, curveShort[i], curveLong[i])
	}
	if err := tb.Render(p.out()); err != nil {
		return nil, err
	}
	// Sharpness: difference between detection at 2x and at 0.5x the
	// threshold; longer horizons should separate better.
	sharpShort := curveShort[5] - curveShort[1]
	sharpLong := curveLong[5] - curveLong[1]
	out := &Outcome{Metrics: map[string]float64{
		"sharp_short": sharpShort,
		"sharp_long":  sharpLong,
		"low_long":    curveLong[0],
		"high_long":   curveLong[6],
	}}
	out.note(p.out(), "paper: longer horizons sharpen the quorum decision; measured separation (P[2x]-P[0.5x]) %.3f (t=%d) -> %.3f (t=%d)", sharpShort, tShort, sharpLong, tLong)
	return out, nil
}

func runE20(p Params) (*Outcome, error) {
	g := topology.MustTorus(2, 16)
	agents := pick(p, 240, 120)
	w, err := sim.NewWorld(sim.Config{Graph: g, NumAgents: agents, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	cfg := tasks.Config{
		Targets:        []float64{0.5, 0.3, 0.2},
		Epochs:         pick(p, 30, 12),
		RoundsPerEpoch: pick(p, 100, 50),
		Seed:           p.Seed + 1,
	}
	res, err := tasks.Run(w, cfg)
	if err != nil {
		return nil, err
	}
	tb := expfmt.NewTable("epoch", "task1", "task2", "task3", "L1 to target")
	for e, alloc := range res.History {
		if e%5 != 0 && e != len(res.History)-1 {
			continue
		}
		l1 := 0.0
		for k, f := range alloc {
			l1 += math.Abs(f - cfg.Targets[k])
		}
		tb.AddRow(e, alloc[0], alloc[1], alloc[2], l1)
	}
	if err := tb.Render(p.out()); err != nil {
		return nil, err
	}
	initL1 := 0.0
	for k, f := range res.History[0] {
		initL1 += math.Abs(f - cfg.Targets[k])
	}
	out := &Outcome{Metrics: map[string]float64{
		"final_l1":   res.FinalL1,
		"initial_l1": initL1,
		"switches":   float64(res.Switches),
	}}
	out.note(p.out(), "paper motivation: encounter rates alone steer the colony to the target mix; L1 distance %.3f -> %.3f over %d epochs (%d switches)", initL1, res.FinalL1, cfg.Epochs, res.Switches)
	return out, nil
}

func runE21(p Params) (*Outcome, error) {
	trials := pick(p, 6000, 1500)
	ring, err := topology.NewRing(4096)
	if err != nil {
		return nil, err
	}
	topos := []struct {
		name  string
		graph topology.Graph
	}{
		{name: "ring", graph: ring},
		{name: "torus2d", graph: topology.MustTorus(2, 64)},
		{name: "torus3d", graph: topology.MustTorus(3, 16)},
	}
	steps := []int{64, 256, 1024}
	if p.Quick {
		steps = []int{64, 256}
	}
	tb := expfmt.NewTable("topology", "steps t", "token RMSE", "indep RMSE", "inflation")
	out := &Outcome{Metrics: map[string]float64{}}
	s := rng.New(p.Seed)
	for _, tp := range topos {
		f := sensors.BernoulliField(0.5, p.Seed+77)
		var lastInfl float64
		for _, t := range steps {
			cmp := sensors.CompareRMSE(tp.graph, f, t, trials, s.Split(uint64(t)))
			tb.AddRow(tp.name, t, cmp.TokenRMSE, cmp.IndependentRMSE, cmp.Inflation)
			lastInfl = cmp.Inflation
		}
		out.Metrics["inflation_"+tp.name] = lastInfl
	}
	if err := tb.Render(p.out()); err != nil {
		return nil, err
	}
	out.note(p.out(), "paper: on the 2-D grid the memoryless token pays only a log-factor penalty (Cor. 15); the ring pays sqrt(t)-like, 3-D almost nothing")
	return out, nil
}

func runE22(p Params) (*Outcome, error) {
	// Agents clustered in 10% of a torus; global density estimation
	// from encounter rates is biased upward for cluster members, and
	// short-horizon estimates reflect the local density instead.
	g := topology.MustTorus(2, 60) // A = 3600
	agents := pick(p, 181, 91)
	t := pick(p, 1000, 250)
	trials := pick(p, 6, 3)
	clusteredRes, err := p.runTrials(TrialSpec{
		Name:   "E22-clustered",
		Trials: trials,
		Seed:   p.Seed,
		Run: func(tr Trial) (TrialResult, error) {
			w, err := sim.NewWorld(sim.Config{
				Graph:     g,
				NumAgents: agents,
				Seed:      tr.Seed,
				Placement: sim.ClusteredPlacement(0.1),
			})
			if err != nil {
				return TrialResult{}, err
			}
			ests, err := core.Algorithm1(w, t)
			if err != nil {
				return TrialResult{}, err
			}
			r := TrialResult{Samples: ests}
			r.Set("density", w.Density())
			return r, nil
		},
	})
	if err != nil {
		return nil, err
	}
	inside := clusteredRes.Samples()
	globalTruth := clusteredRes.Value("density")
	// Local density inside the cluster: all agents in 10% of the
	// nodes, so the in-cluster density is ~10x the global one
	// (diffusion spreads the cluster over t rounds, lowering it).
	localTruth := globalTruth / 0.1
	meanEst := stats.Mean(inside)
	tb := expfmt.NewTable("quantity", "value")
	tb.AddRow("global density d", globalTruth)
	tb.AddRow("initial in-cluster density", localTruth)
	tb.AddRow("mean estimate (clustered, t="+strconv.Itoa(t)+")", meanEst)
	tb.AddRow("ratio estimate/global", meanEst/globalTruth)

	// Control: uniform placement recovers the global density.
	uniformRes, err := algorithm1Trials(p, g, agents, t, trials, p.Seed+500)
	if err != nil {
		return nil, err
	}
	meanUniform := uniformRes.Mean()
	tb.AddRow("mean estimate (uniform)", meanUniform)
	tb.AddRow("ratio uniform/global", meanUniform/globalTruth)
	if err := tb.Render(p.out()); err != nil {
		return nil, err
	}
	out := &Outcome{Metrics: map[string]float64{
		"clustered_over_global": meanEst / globalTruth,
		"uniform_over_global":   meanUniform / globalTruth,
	}}
	out.note(p.out(), "paper (Sections 2.1.1, 6.1): uniform placement is what licenses global estimation; clustered agents measure their (higher) local density instead")
	return out, nil
}
