package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// This file is the JSON renderer of the results model. The encoding is
// schema-stable (locked by golden files in internal/expfmt): cells are
// objects keyed by kind ("v", "int", "str", "bool") with optional
// "ci95", "n", and "unit" annotations, and non-finite floats are
// encoded as the strings "NaN", "+Inf", and "-Inf" so a Result always
// serializes — encoding/json rejects raw non-finite numbers.

// jfloat is a float64 whose JSON form survives non-finite values.
type jfloat float64

// MarshalJSON encodes finite values as numbers and NaN/±Inf as
// strings.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both the numeric and the string encodings.
func (f *jfloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = jfloat(math.NaN())
		case "+Inf", "Inf":
			*f = jfloat(math.Inf(1))
		case "-Inf":
			*f = jfloat(math.Inf(-1))
		default:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("results: invalid float %q", s)
			}
			*f = jfloat(v)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jfloat(v)
	return nil
}

// cellJSON is the wire form of a Cell; exactly one of V/Int/Str/Bool
// is present, selecting the kind.
type cellJSON struct {
	V    *jfloat `json:"v,omitempty"`
	Int  *int64  `json:"int,omitempty"`
	Str  *string `json:"str,omitempty"`
	Bool *bool   `json:"bool,omitempty"`
	CI95 *jfloat `json:"ci95,omitempty"`
	N    int     `json:"n,omitempty"`
	Unit string  `json:"unit,omitempty"`
}

// MarshalJSON encodes the cell in its kind's wire form.
func (c Cell) MarshalJSON() ([]byte, error) {
	w := cellJSON{N: c.N, Unit: c.Unit}
	switch c.Kind {
	case KindFloat:
		v := jfloat(c.Value)
		w.V = &v
	case KindInt:
		i := c.Int
		w.Int = &i
	case KindString:
		s := c.Text
		w.Str = &s
	case KindBool:
		b := c.Bool
		w.Bool = &b
	default:
		return nil, fmt.Errorf("results: cell has unknown kind %d", c.Kind)
	}
	if c.HasCI {
		ci := jfloat(c.CI95)
		w.CI95 = &ci
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a cell, inferring the kind from the value key
// present.
func (c *Cell) UnmarshalJSON(b []byte) error {
	var w cellJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*c = Cell{N: w.N, Unit: w.Unit}
	switch {
	case w.V != nil:
		c.Kind, c.Value = KindFloat, float64(*w.V)
	case w.Int != nil:
		c.Kind, c.Int = KindInt, *w.Int
	case w.Str != nil:
		c.Kind, c.Text = KindString, *w.Str
	case w.Bool != nil:
		c.Kind, c.Bool = KindBool, *w.Bool
	default:
		return fmt.Errorf("results: cell %s has no value key", b)
	}
	if w.CI95 != nil {
		c.CI95, c.HasCI = float64(*w.CI95), true
	}
	return nil
}

// MarshalJSON encodes the metrics with sorted keys and non-finite
// values as strings.
func (m Metrics) MarshalJSON() ([]byte, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var b bytes.Buffer
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		key, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		b.WriteByte(':')
		val, err := jfloat(m[name]).MarshalJSON()
		if err != nil {
			return nil, err
		}
		b.Write(val)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes the metrics, accepting both encodings of
// non-finite values.
func (m *Metrics) UnmarshalJSON(b []byte) error {
	var raw map[string]jfloat
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	out := make(Metrics, len(raw))
	for name, v := range raw {
		out[name] = float64(v)
	}
	*m = out
	return nil
}

// WriteJSON writes r as indented JSON followed by a newline.
func WriteJSON(w io.Writer, r *Result) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSON decodes one Result from r's JSON form.
func ReadJSON(r io.Reader) (*Result, error) {
	dec := json.NewDecoder(r)
	var out Result
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
