package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of fn and
// returns everything written.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	// Drain any remainder.
	for {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil || n == len(buf) {
			break
		}
	}
	return string(buf[:n]), runErr
}

func TestRunDispatchErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no args", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "run without id", args: []string{"run"}},
		{name: "run unknown id", args: []string{"run", "E99"}},
		{name: "netsize bad graph", args: []string{"netsize", "-graph", "nope", "-nodes", "50"}},
		{name: "walk bad topo", args: []string{"walk", "-topo", "nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := captureStdout(t, func() error { return run(tt.args) }); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestCmdList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E01", "E11", "E22"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestCmdHelp(t *testing.T) {
	if _, err := captureStdout(t, func() error { return run([]string{"help"}) }); err != nil {
		t.Errorf("help returned error: %v", err)
	}
}

func TestCmdRunQuick(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"run", "-quick", "-seed", "3", "E01"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E01") || !strings.Contains(out, "bias ratio") {
		t.Errorf("run E01 output unexpected:\n%s", out)
	}
}

func TestCmdEstimate(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"estimate", "-side", "30", "-agents", "91", "-rounds", "200", "-seed", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true density d") || !strings.Contains(out, "mean estimate") {
		t.Errorf("estimate output unexpected:\n%s", out)
	}
}

func TestCmdWalk(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"walk", "-topo", "torus2d", "-steps", "16", "-trials", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P[re-collision]") {
		t.Errorf("walk output unexpected:\n%s", out)
	}
}

func TestCmdNetsizeTorus(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"netsize", "-graph", "torus3", "-nodes", "300", "-walkers", "20", "-steps", "40", "-seed", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated |V|") {
		t.Errorf("netsize output unexpected:\n%s", out)
	}
}

func TestCmdQuorum(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"quorum", "-side", "15", "-agents", "46", "-threshold", "0.1", "-eps", "0.5", "-delta", "0.2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "majority verdict") {
		t.Errorf("quorum output unexpected:\n%s", out)
	}
}

func TestCmdQuorumAdaptive(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"quorum", "-adaptive", "-side", "15", "-agents", "91", "-threshold", "0.1", "-max-rounds", "5000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mean stop round", "fixed-t horizon", "majority verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive quorum output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAllocate(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"allocate", "-agents", "60", "-epochs", "3", "-rounds", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "final L1") {
		t.Errorf("allocate output unexpected:\n%s", out)
	}
}

func TestCmdSensors(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"sensors", "-side", "32", "-steps", "64", "-trials", "500"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "inflation") {
		t.Errorf("sensors output unexpected:\n%s", out)
	}
}
