package netsize

import (
	"math"
	"testing"

	"antdensity/internal/rng"
	"antdensity/internal/socialnet"
	"antdensity/internal/stats"
	"antdensity/internal/topology"
)

// star returns a star graph: node 0 joined to nodes 1..n-1.
func star(n int64) *topology.Adj {
	edges := make([]topology.Edge, 0, n-1)
	for v := int64(1); v < n; v++ {
		edges = append(edges, topology.Edge{U: 0, V: v})
	}
	return topology.MustAdj(n, edges)
}

func TestNewWalkersValidation(t *testing.T) {
	g := topology.MustTorus(3, 4)
	s := rng.New(1)
	if _, err := NewWalkersAtSeed(g, 1, 0, s); err == nil {
		t.Error("single walker accepted")
	}
	if _, err := NewWalkersAtSeed(g, 5, -1, s); err == nil {
		t.Error("negative seed vertex accepted")
	}
	if _, err := NewWalkersAtSeed(g, 5, g.NumNodes(), s); err == nil {
		t.Error("out-of-range seed vertex accepted")
	}
	if _, err := NewWalkersStationary(g, 1, s); err == nil {
		t.Error("single stationary walker accepted")
	}
}

func TestStationarySamplingIsDegreeProportional(t *testing.T) {
	// On a star with 11 nodes, the center holds half the edge
	// endpoints, so stationary walkers start there half the time.
	g := star(11)
	s := rng.New(2)
	const n = 20000
	w, err := NewWalkersStationary(g, n, s)
	if err != nil {
		t.Fatal(err)
	}
	center := 0
	for _, p := range w.Positions() {
		if p == 0 {
			center++
		}
	}
	frac := float64(center) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("center start fraction = %v, want ~0.5", frac)
	}
}

func TestQueryAccounting(t *testing.T) {
	g := topology.MustTorus(3, 4)
	s := rng.New(3)
	w, err := NewWalkersAtSeed(g, 10, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	w.BurnIn(7)
	if got, want := w.Queries(), int64(70); got != want {
		t.Fatalf("queries after burn-in = %d, want %d", got, want)
	}
	res, err := w.EstimateSize(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Queries, int64(120); got != want {
		t.Errorf("queries after estimate = %d, want %d", got, want)
	}
}

func TestEstimateAvgDegreeUnbiased(t *testing.T) {
	// Theorem 31: E[D] = |V|/(2|E|) = 1/degAvg under stationary
	// starts. Star graph: |V|=11, |E|=10, 1/degAvg = 11/20.
	g := star(11)
	s := rng.New(4)
	w, err := NewWalkersStationary(g, 50000, s)
	if err != nil {
		t.Fatal(err)
	}
	got := w.EstimateAvgDegree()
	want := 11.0 / 20
	if math.Abs(got-want) > 0.01 {
		t.Errorf("avg inverse degree = %v, want %v", got, want)
	}
}

func TestWeightedCollisionsBruteForce(t *testing.T) {
	g := topology.MustTorus(2, 3) // 9 nodes, degree 4: collisions guaranteed
	s := rng.New(5)
	w, err := NewWalkersAtSeed(g, 12, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	w.BurnIn(3)
	pos := w.Positions()
	var want float64
	for i, pi := range pos {
		for j, pj := range pos {
			if i != j && pi == pj {
				want += 1 / float64(g.Degree(pi))
			}
		}
	}
	if got := w.weightedCollisions(); math.Abs(got-want) > 1e-9 {
		t.Errorf("weightedCollisions = %v, brute force = %v", got, want)
	}
}

func TestEstimateSizeRegularGraph(t *testing.T) {
	// 3-D torus: regular, fast local mixing (B(t) = O(1)); the size
	// estimate should concentrate near |V| = 512.
	g := topology.MustTorus(3, 8)
	var cs []float64
	for trial := 0; trial < 10; trial++ {
		res, err := Estimate(g, Config{
			Walkers: 50, Steps: 100, Stationary: true, Seed: uint64(100 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, res.C)
	}
	meanC := stats.Mean(cs)
	want := 1 / float64(g.NumNodes())
	if math.Abs(meanC-want)/want > 0.25 {
		t.Errorf("mean C = %v, want ~%v (size %v vs %d)", meanC, want, 1/meanC, g.NumNodes())
	}
}

func TestEstimateSizeIrregularGraphDegreeCorrection(t *testing.T) {
	// On a heavily irregular graph the degree weighting is what keeps
	// the estimator calibrated (Lemma 28). Use a BA graph.
	s := rng.New(6)
	g, err := socialnet.BarabasiAlbert(600, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	var cs []float64
	for trial := 0; trial < 12; trial++ {
		res, err := Estimate(g, Config{
			Walkers: 60, Steps: 80, Stationary: true, Seed: uint64(200 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, res.C)
	}
	meanC := stats.Mean(cs)
	want := 1 / float64(g.NumNodes())
	if math.Abs(meanC-want)/want > 0.3 {
		t.Errorf("mean C = %v, want ~%v (size %v vs %d)", meanC, want, 1/meanC, g.NumNodes())
	}
}

func TestSeedStartWithBurnInMatchesStationary(t *testing.T) {
	// Section 5.1.4: after enough burn-in, seed-started walks give
	// estimates consistent with stationary-started ones. The side
	// must be odd: an even-side torus is bipartite and the walk never
	// mixes (Estimate rejects it; see the test below).
	g := topology.MustTorus(3, 7)
	var burned, stationary []float64
	for trial := 0; trial < 10; trial++ {
		rb, err := Estimate(g, Config{
			Walkers: 50, Steps: 80, BurnIn: -1, SeedVertex: 0, Seed: uint64(300 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Estimate(g, Config{
			Walkers: 50, Steps: 80, Stationary: true, Seed: uint64(400 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		burned = append(burned, rb.C)
		stationary = append(stationary, rs.C)
	}
	mb, ms := stats.Mean(burned), stats.Mean(stationary)
	if math.Abs(mb-ms)/ms > 0.35 {
		t.Errorf("burned-in mean C %v vs stationary %v differ too much", mb, ms)
	}
}

func TestKatzirVsMultiRound(t *testing.T) {
	// With few walkers, the single-snapshot Katzir estimator often
	// sees zero collisions (C = 0 => infinite size estimate), while
	// the multi-round estimator accumulates collisions over t rounds.
	g := topology.MustTorus(3, 10) // 1000 nodes
	s := rng.New(7)
	infKatzir, infMulti := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		wk, err := NewWalkersStationary(g, 12, s.Split(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(wk.KatzirEstimate(0).Size, 1) {
			infKatzir++
		}
		wm, err := NewWalkersStationary(g, 12, s.Split(uint64(1000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := wm.EstimateSize(400, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(res.Size, 1) {
			infMulti++
		}
	}
	if infKatzir <= infMulti {
		t.Errorf("Katzir produced %d infinite estimates vs multi-round %d; expected strictly more", infKatzir, infMulti)
	}
	if infMulti > trials/4 {
		t.Errorf("multi-round estimator failed to collide in %d/%d trials", infMulti, trials)
	}
}

func TestMedianOfMeansSuppressesOutliers(t *testing.T) {
	g := topology.MustTorus(3, 8)
	size, queries, err := MedianOfMeansSize(g, Config{
		Walkers: 30, Steps: 60, Stationary: true, Seed: 11,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if queries <= 0 {
		t.Error("no queries recorded")
	}
	want := float64(g.NumNodes())
	if math.Abs(size-want)/want > 0.5 {
		t.Errorf("median-of-means size = %v, want ~%v", size, want)
	}
	if _, _, err := MedianOfMeansSize(g, Config{Walkers: 5, Steps: 5, Stationary: true}, 0); err == nil {
		t.Error("reps=0 accepted")
	}
}

func TestEstimateSizeValidation(t *testing.T) {
	g := topology.MustTorus(3, 4)
	s := rng.New(8)
	w, err := NewWalkersStationary(g, 5, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.EstimateSize(0, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestTheoryWalkerCount(t *testing.T) {
	// Increasing t decreases the required walker count like 1/sqrt(t)
	// — the paper's key tradeoff (Section 5.1.5).
	n1 := TheoryWalkerCount(1000000, 1, 6, 0.1, 0.1, 1)
	n100 := TheoryWalkerCount(1000000, 1, 6, 0.1, 0.1, 100)
	if n100 >= n1 {
		t.Errorf("walker count did not fall with t: t=1 -> %d, t=100 -> %d", n1, n100)
	}
	ratio := float64(n1) / float64(n100)
	if math.Abs(ratio-10) > 1 {
		t.Errorf("walker ratio = %v, want ~sqrt(100) = 10", ratio)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("t=0 did not panic")
			}
		}()
		TheoryWalkerCount(100, 1, 2, 0.1, 0.1, 0)
	}()
}

func TestEstimateConfigErrors(t *testing.T) {
	g := topology.MustTorus(3, 4)
	if _, err := Estimate(g, Config{Walkers: 1, Steps: 10, Stationary: true}); err == nil {
		t.Error("walkers=1 accepted")
	}
}

func TestEstimateRejectsBipartiteAutoBurnIn(t *testing.T) {
	// Even-side torus is bipartite: lambda = 1, the walk never mixes,
	// and automatic burn-in must refuse rather than loop for millions
	// of steps.
	g := topology.MustTorus(3, 8)
	_, err := Estimate(g, Config{Walkers: 10, Steps: 10, BurnIn: -1, SeedVertex: 0, Seed: 1})
	if err == nil {
		t.Fatal("bipartite graph accepted for auto burn-in")
	}
}
