package topology

import (
	"fmt"

	"antdensity/internal/rng"
)

// NewRandomRegular samples a random d-regular (multi)graph on n nodes
// using the permutation model: the union of d/2 uniformly random
// fixed-point-free permutations, each contributing the undirected
// edges {v, sigma(v)}. Such graphs are expanders with high
// probability, with second eigenvalue concentrated near 2*sqrt(d-1)/d,
// which is what the paper's Section 4.4 analysis assumes.
//
// The result may contain multi-edges (for example when a permutation
// has a 2-cycle); they are rare for n >> d and harmless for
// random-walk semantics since every node has degree exactly d. Fixed
// points (self-loops) are eliminated by local swaps.
//
// It returns an error if d is not a positive even number or n < d+1.
func NewRandomRegular(n int64, d int, s *rng.Stream) (*Adj, error) {
	if d <= 0 || d%2 != 0 {
		return nil, fmt.Errorf("topology: random regular degree must be positive and even, got %d", d)
	}
	if n < int64(d)+1 {
		return nil, fmt.Errorf("topology: random regular needs n >= d+1 (n=%d, d=%d)", n, d)
	}
	edges := make([]Edge, 0, n*int64(d)/2)
	for p := 0; p < d/2; p++ {
		perm := randomDerangementish(n, s)
		for v := int64(0); v < n; v++ {
			edges = append(edges, Edge{U: v, V: perm[v]})
		}
	}
	return NewAdj(n, edges)
}

// randomDerangementish returns a uniformly random permutation of
// [0, n) with fixed points removed by swapping each fixed point with a
// random other position. The result is not exactly uniform over
// derangements, but is fixed-point free and near-uniform, which
// suffices for expander construction.
func randomDerangementish(n int64, s *rng.Stream) []int64 {
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	s.Shuffle(int(n), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for v := int64(0); v < n; v++ {
		if perm[v] != v {
			continue
		}
		u := int64(s.Intn(int(n - 1)))
		if u >= v {
			u++
		}
		perm[v], perm[u] = perm[u], perm[v]
		// The swap cannot create a new fixed point at u: perm[u] is now
		// the old perm[v] == v != u. Position v now holds the old
		// perm[u] != u; it equals v only if u's old image was v, in
		// which case v and u form a 2-cycle with no fixed points.
	}
	return perm
}
