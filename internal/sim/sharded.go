package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"antdensity/internal/rng"
	"antdensity/internal/shard"
)

// This file is the sharded execution mode: spatial domain
// decomposition of the world into K shards (contiguous node ranges,
// row-band-aligned on tori — see internal/shard), each owning the SoA
// hot state, occupancy index slab, and rng streams of the agents
// currently inside its range. A sharded round has two phases with a
// barrier between them:
//
//  1. Shard-local stepping: each shard advances its own agents with
//     the same batched/fused/scalar kernels as the flat world, then
//     classifies results — agents still inside the shard's range
//     update the shard's occupancy slab in place; agents that left
//     are posted to the per-(src, dst) migration mailboxes.
//  2. Migration merge: each shard evicts its emigrants (descending
//     slot order, so swap-removal never disturbs an unprocessed slot)
//     and appends its immigrants in fixed (src, mailbox-insertion)
//     order, updating its occupancy slab.
//
// Both phases touch only state owned by the shard being processed (a
// shard's slab, its outgoing mailboxes in phase 1, its incoming ones
// in phase 2), so shards can be processed by any number of workers in
// any order. Agent ids, positions, and streams are preserved through
// migration, and each agent's draws still come only from its own
// stream, so the observable state — positions and counts by agent id
// — is bit-identical to the flat world and to any other shard count:
// the workers=1-vs-N invariant extends to shards=1-vs-K. Even the
// internal slab layouts are worker-count-invariant, because the merge
// order is fixed by (src, insertion index), not by scheduling.
//
// The flat w.pos array remains a mirror of every agent's position,
// rewritten during phase 1 (disjoint ids per shard, so the parallel
// writes are race-free); all id-indexed queries read it directly, and
// position-keyed queries route to the owning shard via the O(1)
// Partition.Find. The flat w.prev and w.streams are dead in sharded
// mode and released at construction.

// ShardAuto (the Config.Shards zero value) lets the world pick the
// shard count: SetDefaultShards' value if set, otherwise GOMAXPROCS
// (capped at shardMaxAuto) for worlds with at least shardAutoMinAgents
// agents, and 1 — no sharding — below that.
const ShardAuto = 0

// shardAutoMinAgents is the population below which ShardAuto keeps the
// flat path: the migration machinery only pays for itself once
// stepping dominates per-round costs.
const shardAutoMinAgents = 1 << 20

// shardMaxAuto caps the automatically chosen shard count; explicit
// Config.Shards may exceed it (bounded only by the graph's row count).
const shardMaxAuto = 64

// defaultShards is the process-wide ShardAuto override installed by
// SetDefaultShards (the CLI's -shards flag).
//antlint:globalok execution-layout default only; results are shard-invariant for every count (TestRunShardInvariance)
var defaultShards atomic.Int32

// SetDefaultShards installs a process-wide shard count that ShardAuto
// resolves to instead of its GOMAXPROCS heuristic. k <= 0 restores
// the heuristic. Worlds whose Config.Shards is explicit are
// unaffected. Results are shard-invariant, so flipping the default
// never changes any run's output — only its execution layout.
func SetDefaultShards(k int) {
	if k < 0 {
		k = 0
	}
	defaultShards.Store(int32(k))
}

// resolveShardCount maps cfg.Shards to an effective requested count,
// before partitioning clamps it to the graph's unit count.
func resolveShardCount(cfg Config) (int, error) {
	k := cfg.Shards
	if k < 0 {
		return 0, fmt.Errorf("sim: Config.Shards must be >= 0, got %d", k)
	}
	if k != ShardAuto {
		return k, nil
	}
	if d := int(defaultShards.Load()); d > 0 {
		return d, nil
	}
	if cfg.NumAgents < shardAutoMinAgents {
		return 1, nil
	}
	k = runtime.GOMAXPROCS(0)
	if k > shardMaxAuto {
		k = shardMaxAuto
	}
	return k, nil
}

// migrant is one agent crossing shards this round: everything the
// destination slab needs to adopt it. Tags and groups stay in the
// global id-indexed arrays and need not travel.
type migrant struct {
	pos    int64
	stream rng.Stream
	id     int32
}

// shardSlab is one shard's owned state: the SoA hot state of its
// current agents (indexed by slab slot, not agent id), the ids mapping
// slots back to agents, the shard's node range, and its occupancy
// slab. dense is indexed by (node - lo); sparse is a per-shard
// occTable. emig collects this round's emigrant slots (ascending)
// between phases.
type shardSlab struct {
	hotState
	ids    []int32
	lo, hi int64
	dense  []cell
	sparse *occTable
	group  map[groupKey]int32
	emig   []int32
	counts []int // scratch for sparse bulk count queries
}

// shardedState hangs off World when sharding is active.
type shardedState struct {
	part  *shard.Partition
	slabs []shardSlab
	boxes *shard.Mailbox[migrant]
	// track mirrors !w.occDirty for the current round's phases.
	track bool
	// needDraws/needFloats cache scratchNeeds for the uniform policy.
	needDraws, needFloats bool
	// countsDst/countsTagged parameterize an in-flight jobShardCounts.
	countsDst    []int
	countsTagged bool
}

// initShards distributes the freshly placed flat world into slabs and
// switches w into sharded mode. Called once from NewWorld, after
// placement; the flat prev and streams arrays are released (pos stays,
// as the id-indexed position mirror).
func (w *World) initShards(part *shard.Partition) {
	k := part.K()
	sh := &shardedState{
		part:  part,
		slabs: make([]shardSlab, k),
		boxes: shard.NewMailbox[migrant](k),
	}
	if w.uniform != nil {
		sh.needDraws, sh.needFloats = scratchNeeds(w.uniform, w.graph)
	}
	perShard := make([]int, k)
	for _, p := range w.pos {
		perShard[part.Find(p)]++
	}
	for s := range sh.slabs {
		sl := &sh.slabs[s]
		sl.lo, sl.hi = part.Bounds(s)
		// Initial population plus migration headroom, so steady-state
		// churn rarely regrows the slab.
		c := perShard[s] + perShard[s]/8 + 64
		sl.pos = make([]int64, 0, c)
		sl.streams = make([]rng.Stream, 0, c)
		sl.ids = make([]int32, 0, c)
	}
	for i, p := range w.pos {
		sl := &sh.slabs[part.Find(p)]
		sl.pos = append(sl.pos, p)
		sl.streams = append(sl.streams, w.streams[i])
		sl.ids = append(sl.ids, int32(i))
	}
	w.prev = nil
	w.streams = nil
	w.sh = sh
}

// Shards returns the world's effective shard count (1 when the flat
// path is active).
func (w *World) Shards() int {
	if w.sh == nil {
		return 1
	}
	return len(w.sh.slabs)
}

// autoStepWorkers returns the worker count a driver with no explicit
// preference should use: one shard per worker up to GOMAXPROCS for
// sharded worlds, serial otherwise. The pipeline Runner uses it so
// sharded worlds parallelize without every call site growing a knob.
func (w *World) autoStepWorkers() int {
	if w.sh == nil {
		return 1
	}
	k := len(w.sh.slabs)
	if g := runtime.GOMAXPROCS(0); g < k {
		k = g
	}
	return k
}

// stepSharded advances one synchronous round in sharded mode. The
// migration phase runs every round — even for worlds that never query
// counts — because slab ownership (agent in slab s iff its position is
// in s's range) is the structural invariant everything else indexes
// by.
//antlint:noalloc
func (w *World) stepSharded(workers int) {
	sh := w.sh
	sh.track = !w.occDirty
	k := len(sh.slabs)
	if workers > k {
		workers = k
	}
	if workers < 2 {
		for s := 0; s < k; s++ {
			w.shardPhase1(s)
		}
		for s := 0; s < k; s++ {
			w.shardPhase2(s)
		}
	} else {
		p := w.ensurePool(workers)
		p.run(w, jobShardPhase1, k, 1)
		p.run(w, jobShardPhase2, k, 1)
	}
	w.round++
}

// syncScratch sizes slab scratch to the current population. Slab
// populations drift with migration, so unlike the flat world's
// once-only ensureScratch this re-checks cheaply every round; buffers
// are regrown to the slab's capacity high-water mark, which stabilizes
// after warm-up.
func (sl *shardSlab) syncScratch(sh *shardedState) {
	n := len(sl.pos)
	if sh.needDraws && len(sl.draws) < n {
		sl.draws = make([]uint64, cap(sl.pos))
	}
	if sh.needFloats && len(sl.floats) < n {
		sl.floats = make([]float64, cap(sl.pos))
	}
}

// shardPhase1 steps shard s's agents and classifies the results:
// stayers update the slab occupancy in place, emigrants are posted to
// the (s, dst) mailboxes and their slots recorded for phase-2
// eviction. Touches only slab s, its outgoing mailboxes, and
// disjoint-id elements of the flat position mirror — safe to run
// concurrently with any other shard's phase 1.
//antlint:noalloc
func (w *World) shardPhase1(s int) {
	sh := w.sh
	sl := &sh.slabs[s]
	sl.emig = sl.emig[:0]
	n := len(sl.pos)
	if n == 0 {
		return
	}
	track := sh.track
	sl.syncScratch(sh)
	if track {
		if cap(sl.prev) < n {
			//antlint:allocok capacity high-water regrow; stabilizes after migration warm-up (see padShardCapacities)
			sl.prev = make([]int64, n, cap(sl.pos))
		} else {
			sl.prev = sl.prev[:n]
		}
		copy(sl.prev, sl.pos)
	}
	if p := w.uniform; p != nil {
		if !sl.stepBatched(w.graph, p, 0, n) {
			if b, ok := p.(BulkStepper); ok && b.StepMany(w.graph, sl.pos, sl.streams) {
			} else {
				for k := 0; k < n; k++ {
					sl.pos[k] = p.Step(w.graph, sl.pos[k], &sl.streams[k])
				}
			}
		}
	} else {
		for k := 0; k < n; k++ {
			sl.pos[k] = w.policies[sl.ids[k]].Step(w.graph, sl.pos[k], &sl.streams[k])
		}
	}
	anyGroups := len(w.numGroup) > 0
	for k := 0; k < n; k++ {
		p := sl.pos[k]
		id := sl.ids[k]
		w.pos[id] = p // id-indexed mirror; ids are disjoint across shards
		if p >= sl.lo && p < sl.hi {
			if track {
				if q := sl.prev[k]; p != q {
					tag := w.tagged[id]
					sl.decCell(q, tag)
					sl.incCell(p, tag)
					if anyGroups {
						if g := w.groups[id]; g != 0 {
							sl.groupDec(q, g)
							sl.groupInc(p, g)
						}
					}
				}
			}
			continue
		}
		sh.boxes.Put(s, sh.part.Find(p), migrant{pos: p, stream: sl.streams[k], id: id})
		sl.emig = append(sl.emig, int32(k))
		if track {
			q := sl.prev[k]
			tag := w.tagged[id]
			sl.decCell(q, tag)
			if anyGroups {
				if g := w.groups[id]; g != 0 {
					sl.groupDec(q, g)
				}
			}
		}
	}
}

// shardPhase2 completes shard s's round: evict this round's emigrants
// by swap-removal in descending slot order (so a swapped-in tail
// element is never an unprocessed emigrant), then adopt immigrants in
// fixed (src, mailbox-insertion) order. Touches only slab s and its
// incoming mailboxes — safe to run concurrently with any other
// shard's phase 2, and the fixed merge order makes the resulting slab
// layout independent of worker count.
//antlint:noalloc
func (w *World) shardPhase2(s int) {
	sh := w.sh
	sl := &sh.slabs[s]
	track := sh.track
	for t := len(sl.emig) - 1; t >= 0; t-- {
		k := int(sl.emig[t])
		last := len(sl.pos) - 1
		sl.pos[k] = sl.pos[last]
		sl.streams[k] = sl.streams[last]
		sl.ids[k] = sl.ids[last]
		sl.pos = sl.pos[:last]
		sl.streams = sl.streams[:last]
		sl.ids = sl.ids[:last]
	}
	anyGroups := len(w.numGroup) > 0
	for src := 0; src < len(sh.slabs); src++ {
		for _, m := range sh.boxes.Box(src, s) {
			sl.pos = append(sl.pos, m.pos)
			sl.streams = append(sl.streams, m.stream)
			sl.ids = append(sl.ids, m.id)
			if track {
				sl.incCell(m.pos, w.tagged[m.id])
				if anyGroups {
					if g := w.groups[m.id]; g != 0 {
						sl.groupInc(m.pos, g)
					}
				}
			}
		}
	}
	sh.boxes.ClearDst(s)
}

// rebuildOccSharded rebuilds every shard's occupancy slab from its
// current agents — the sharded twin of rebuildOcc, run only while the
// index is stale; the phases maintain the slabs incrementally from
// then on.
func (w *World) rebuildOccSharded() {
	dense := w.occ.mode == OccDense
	anyGroups := len(w.numGroup) > 0
	for s := range w.sh.slabs {
		sl := &w.sh.slabs[s]
		if dense {
			if sl.dense == nil {
				sl.dense = make([]cell, sl.hi-sl.lo)
			} else {
				clear(sl.dense)
			}
			for k, p := range sl.pos {
				c := &sl.dense[p-sl.lo]
				c.total++
				if w.tagged[sl.ids[k]] {
					c.tagged++
				}
			}
		} else {
			if sl.sparse == nil {
				sl.sparse = newOccTable(len(sl.pos))
			} else {
				sl.sparse.reset()
			}
			for k, p := range sl.pos {
				sl.sparse.inc(p, w.tagged[sl.ids[k]])
			}
		}
		if sl.group == nil {
			sl.group = make(map[groupKey]int32)
		} else {
			clear(sl.group)
		}
		if anyGroups {
			for k, p := range sl.pos {
				if g := w.groups[sl.ids[k]]; g != 0 {
					sl.group[groupKey{pos: p, group: g}]++
				}
			}
		}
	}
	w.occDirty = false
}

// shardCountsRange scatters shard s's bulk counts (totals or tagged,
// per countsTagged) into the id-indexed destination slice — the
// sharded kernel behind CountsAllInto/CountsTaggedAllInto. Writes are
// disjoint across shards (by agent id), so the pool may run shards
// concurrently and the result is identical to the serial loop.
func (w *World) shardCountsRange(s int) {
	sh := w.sh
	sl := &sh.slabs[s]
	out := sh.countsDst
	if sl.dense != nil {
		if sh.countsTagged {
			for k, p := range sl.pos {
				id := sl.ids[k]
				c := int(sl.dense[p-sl.lo].tagged)
				if w.tagged[id] {
					c--
				}
				out[id] = c
			}
		} else {
			for k, p := range sl.pos {
				out[sl.ids[k]] = int(sl.dense[p-sl.lo].total) - 1
			}
		}
		return
	}
	if len(sl.pos) == 0 {
		return
	}
	if cap(sl.counts) < len(sl.pos) {
		sl.counts = make([]int, cap(sl.pos))
	}
	buf := sl.counts[:len(sl.pos)]
	if sh.countsTagged {
		sl.sparse.taggedInto(sl.pos, buf)
		for k, id := range sl.ids {
			c := buf[k]
			if w.tagged[id] {
				c--
			}
			out[id] = c
		}
	} else {
		sl.sparse.totalsInto(sl.pos, buf)
		for k, id := range sl.ids {
			out[id] = buf[k] - 1
		}
	}
}

// shardCountsInto runs the bulk-count scatter over all shards,
// through the pool when one is warm.
//antlint:noalloc
func (w *World) shardCountsInto(out []int, tagged bool) {
	sh := w.sh
	sh.countsDst = out
	sh.countsTagged = tagged
	if w.pool != nil {
		w.pool.run(w, jobShardCounts, len(sh.slabs), 1)
	} else {
		for s := range sh.slabs {
			w.shardCountsRange(s)
		}
	}
	sh.countsDst = nil
}

// incCell adds one agent to node p's cell in the slab's occupancy.
func (sl *shardSlab) incCell(p int64, tag bool) {
	if sl.dense != nil {
		c := &sl.dense[p-sl.lo]
		c.total++
		if tag {
			c.tagged++
		}
		return
	}
	sl.sparse.inc(p, tag)
}

// decCell removes one agent from node p's cell in the slab's
// occupancy.
func (sl *shardSlab) decCell(p int64, tag bool) {
	if sl.dense != nil {
		c := &sl.dense[p-sl.lo]
		c.total--
		if tag {
			c.tagged--
		}
		return
	}
	sl.sparse.dec(p, tag)
}

// cellAt returns node p's occupancy cell from the slab.
func (sl *shardSlab) cellAt(p int64) cell {
	if sl.dense != nil {
		return sl.dense[p-sl.lo]
	}
	return sl.sparse.get(p)
}

// groupDec removes one member of group g from node p in the slab's
// per-group index, deleting emptied entries.
func (sl *shardSlab) groupDec(p int64, g int32) {
	k := groupKey{pos: p, group: g}
	if n := sl.group[k] - 1; n == 0 {
		delete(sl.group, k)
	} else {
		sl.group[k] = n
	}
}

// groupInc adds one member of group g at node p to the slab's
// per-group index.
func (sl *shardSlab) groupInc(p int64, g int32) {
	sl.group[groupKey{pos: p, group: g}]++
}

// slabFor returns the slab owning position p (valid by the ownership
// invariant: an agent's slab is always the one whose range holds its
// current position).
func (w *World) slabFor(p int64) *shardSlab {
	return &w.sh.slabs[w.sh.part.Find(p)]
}

// shardLimitAgents is the agent-count ceiling in sharded mode (slot
// ids are int32).
const shardLimitAgents = math.MaxInt32
