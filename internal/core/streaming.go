package core

import (
	"fmt"
	"math"

	"antdensity/internal/sim"
)

// StreamingEstimator is an incremental version of Algorithm 1 with
// anytime confidence intervals: an agent feeds it one count(position)
// reading per round and can at any time read off the running density
// estimate together with a (1-delta) confidence band shaped like
// Theorem 1's bound, eps(t) = c * sqrt(log(1/delta)/(t*d-hat)) *
// log(2t), with the plug-in estimate d-hat.
//
// This realizes the "agents only need to detect when d is above some
// fixed threshold" usage of Section 6.2: an agent can stop as soon as
// its confidence band clears the threshold in either direction.
//
// The zero value is unusable; construct with NewStreamingEstimator.
type StreamingEstimator struct {
	c1     float64
	rounds int
	count  int64
}

// NewStreamingEstimator returns a streaming estimator using the given
// Theorem 1 constant (c1 = 0.35 reproduces the empirical calibration
// of experiment E02; larger is more conservative). It returns an
// error if c1 <= 0.
func NewStreamingEstimator(c1 float64) (*StreamingEstimator, error) {
	if c1 <= 0 {
		return nil, fmt.Errorf("core: c1 must be positive, got %v", c1)
	}
	return &StreamingEstimator{c1: c1}, nil
}

// Observe feeds one round's collision count.
func (e *StreamingEstimator) Observe(count int) {
	if count < 0 {
		panic(fmt.Sprintf("core: negative collision count %d", count))
	}
	e.rounds++
	e.count += int64(count)
}

// Rounds returns the number of observed rounds t.
func (e *StreamingEstimator) Rounds() int { return e.rounds }

// Estimate returns the running encounter rate c/t (0 before the first
// round).
func (e *StreamingEstimator) Estimate() float64 {
	if e.rounds == 0 {
		return 0
	}
	return float64(e.count) / float64(e.rounds)
}

// Interval returns the running estimate and an additive half-width
// such that, per Theorem 1's shape, the true density lies within
// [estimate - half, estimate + half] with probability about 1-delta.
// Before any collision is seen, the half-width is +Inf (the agent has
// no multiplicative handle on d yet).
func (e *StreamingEstimator) Interval(delta float64) (estimate, half float64) {
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("core: delta must be in (0, 1), got %v", delta))
	}
	estimate = e.Estimate()
	if e.rounds == 0 || estimate == 0 {
		return estimate, math.Inf(1)
	}
	// The plug-in density for the bound lives in (0, 1]; the running
	// encounter rate can transiently exceed 1 in dense worlds (several
	// collisions in one round), so clamp before evaluating Theorem 1.
	plugin := estimate
	if plugin > 1 {
		plugin = 1
	}
	eps := TheoremOneEpsilon(e.rounds, plugin, delta, e.c1)
	return estimate, eps * estimate
}

// AboveThreshold reports the estimator's decision about a density
// threshold at confidence 1-delta: +1 when the whole confidence band
// lies above threshold, -1 when it lies below, 0 while undecided.
func (e *StreamingEstimator) AboveThreshold(threshold, delta float64) int {
	if threshold <= 0 {
		panic(fmt.Sprintf("core: threshold must be positive, got %v", threshold))
	}
	est, half := e.Interval(delta)
	switch {
	case math.IsInf(half, 1):
		// No collisions yet: the estimate is 0 and we cannot bound d
		// multiplicatively. We can still decide "below" once enough
		// rounds have passed that a density at the threshold would
		// almost surely have produced a collision: the count is
		// Binomial(t, d)-like with mean t*threshold.
		if float64(e.rounds)*threshold > math.Log(1/delta)*3 {
			return -1
		}
		return 0
	case est-half > threshold:
		return +1
	case est+half < threshold:
		return -1
	default:
		return 0
	}
}

// Reset clears all observations.
func (e *StreamingEstimator) Reset() {
	e.rounds = 0
	e.count = 0
}

// AsObserver adapts the estimator to the sim pipeline: each observed
// round it feeds the estimator the given agent's count from the shared
// snapshot. It never stops on its own; callers that stop on a
// threshold decision wrap it (see AboveThreshold) or use the quorum
// package's anytime detector.
func (e *StreamingEstimator) AsObserver(agent int) sim.Observer {
	return sim.ObserverFunc(func(r *sim.Round) sim.Signal {
		e.Observe(r.Counts()[agent])
		return sim.Continue
	})
}
