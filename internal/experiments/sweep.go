package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"antdensity/internal/results"
)

// This file is the sweep engine: it executes a user-supplied axis
// cross-product through an experiment's Cell function — the same
// measurement the experiment's own tables are built from, running on
// the same parallel trial runner — and streams one typed results row
// per grid cell. No experiment code changes to run a new sweep: axes
// are overridden by name from the CLI.

// sweepMemo caches sweep-wide shared measurements across cell
// invocations; see sweepShared.
//antlint:globalok memoization cache; values are deterministic functions of the (experiment, seed, mode) key, so hits and misses are observationally identical
var sweepMemo sync.Map

// sweepShared memoizes a measurement shared by every cell of a sweep
// — e.g. a Monte Carlo curve whose prefix serves all smaller horizons
// — keyed by (experiment, seed, mode), the inputs that change its
// value. The first cell computes it (sized to the whole active axis
// via Point.ActiveValues); later cells reuse it. covers reports
// whether a cached value satisfies the current cell; a rejected or
// missing entry is recomputed. Cached values are deterministic
// functions of the key, so concurrent recomputation and
// last-write-wins storage are benign.
func sweepShared[T any](id string, p Params, covers func(T) bool, measure func() (T, error)) (T, error) {
	key := fmt.Sprintf("%s/%d/%t", id, p.Seed, p.Quick)
	if v, ok := sweepMemo.Load(key); ok {
		if t, ok := v.(T); ok && covers(t) {
			return t, nil
		}
	}
	t, err := measure()
	if err != nil {
		var zero T
		return zero, err
	}
	sweepMemo.Store(key, t)
	return t, nil
}

// SweepRow is one completed cell of a sweep: the grid point and the
// experiment's measurements at it.
type SweepRow struct {
	Point Point
	Cells []results.Cell
}

// AxisValues returns the row's grid coordinates as typed cells, one
// per axis in declaration order.
func (r SweepRow) AxisValues() []results.Cell {
	out := make([]results.Cell, r.Point.Len())
	for i := range out {
		a, v := r.Point.Axis(i), r.Point.Value(i)
		switch a.Kind {
		case AxisFloat:
			f, _ := strconv.ParseFloat(v, 64)
			out[i] = results.Float(f).WithUnit(a.Unit)
		case AxisInt:
			n, _ := strconv.Atoi(v)
			out[i] = results.Int(int64(n)).WithUnit(a.Unit)
		default:
			out[i] = results.String(v)
		}
	}
	return out
}

// SweepColumns returns the columns of a sweep's output: one per axis,
// then the experiment's measurement columns.
func (e Experiment) SweepColumns() []results.Column {
	out := make([]results.Column, 0, len(e.Axes)+len(e.Columns))
	for _, a := range e.Axes {
		out = append(out, results.Column{Name: a.Name, Unit: a.Unit})
	}
	return append(out, e.Columns...)
}

// SweepableIDs returns the IDs of every experiment that supports
// sweeps.
func SweepableIDs() []string {
	var out []string
	for _, e := range All() {
		if e.Sweepable() {
			out = append(out, e.ID)
		}
	}
	return out
}

// Sweep executes e.Cell over the cross-product of e's axes with the
// given per-axis value overrides (nil or missing entries keep the
// registered defaults for p's mode), invoking emit for each completed
// row in row-major order. Cells run their trials through the shared
// parallel runner, so every value is bit-identical for every worker
// count.
func (e Experiment) Sweep(p Params, overrides map[string][]string, emit func(SweepRow) error) error {
	if !e.Sweepable() {
		return fmt.Errorf("experiments: %s declares no parameter grid; sweepable experiments: %s",
			e.ID, strings.Join(SweepableIDs(), ", "))
	}
	values := make([][]string, len(e.Axes))
	used := map[string]bool{}
	for i, a := range e.Axes {
		if ov, ok := overrides[a.Name]; ok {
			for _, v := range ov {
				if err := a.Check(v); err != nil {
					return err
				}
			}
			values[i] = ov
			used[a.Name] = true
		} else {
			values[i] = a.Values(p.Quick)
		}
	}
	unknown := make([]string, 0, len(overrides))
	for name := range overrides {
		if !used[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: %s has no axis %q; axes: %s",
			e.ID, unknown[0], axisNames(e.Axes))
	}
	registered := make([][]string, len(e.Axes))
	for i, a := range e.Axes {
		registered[i] = a.Values(p.Quick)
	}
	return gridOver(e.Axes, values, registered, func(pt Point) error {
		cells, err := runCell(e, p, pt)
		if err != nil {
			return err
		}
		if len(cells) != len(e.Columns) {
			return fmt.Errorf("experiments: %s cell returned %d values, want %d columns",
				e.ID, len(cells), len(e.Columns))
		}
		return emit(SweepRow{Point: pt, Cells: cells})
	})
}

// runCell invokes e.Cell, converting a panic into an error with the
// grid point named: user-supplied axis values can reach library
// validation panics, and a sweep must fail with a message, not a
// stack trace.
func runCell(e Experiment, p Params, pt Point) (cells []results.Cell, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s cell at %s panicked: %v", e.ID, pointLabel(pt), r)
		}
	}()
	return e.Cell(p, pt)
}

// pointLabel renders a grid point as "name=value" pairs for error
// messages.
func pointLabel(pt Point) string {
	parts := make([]string, pt.Len())
	for i := range parts {
		parts[i] = pt.Axis(i).Name + "=" + pt.Value(i)
	}
	return strings.Join(parts, ", ")
}

// SweepSpecs parses CLI-style axis specs ("name=v1,v2,v3" or
// "name=lo:hi:step") and runs Sweep with them.
func (e Experiment) SweepSpecs(p Params, specs []string, emit func(SweepRow) error) error {
	if !e.Sweepable() {
		return fmt.Errorf("experiments: %s declares no parameter grid; sweepable experiments: %s",
			e.ID, strings.Join(SweepableIDs(), ", "))
	}
	overrides := map[string][]string{}
	for _, spec := range specs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return fmt.Errorf("experiments: axis spec %q must be name=values", spec)
		}
		ax, found := e.axisByName(name)
		if !found {
			return fmt.Errorf("experiments: %s has no axis %q; axes: %s", e.ID, name, axisNames(e.Axes))
		}
		vals, err := ExpandAxisSpec(ax, rest)
		if err != nil {
			return err
		}
		overrides[name] = append(overrides[name], vals...)
	}
	return e.Sweep(p, overrides, emit)
}

// axisByName finds an axis declaration by name.
func (e Experiment) axisByName(name string) (Axis, bool) {
	for _, a := range e.Axes {
		if a.Name == name {
			return a, true
		}
	}
	return Axis{}, false
}

// ExpandAxisSpec expands one axis value spec: either an explicit
// comma-separated list ("0.01,0.05,0.1") or, for numeric axes, an
// inclusive range "lo:hi:step" ("100:1000:100" is 100, 200, ..., 1000).
func ExpandAxisSpec(a Axis, spec string) ([]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("experiments: axis %q spec is empty", a.Name)
	}
	if strings.Contains(spec, ":") {
		if a.Kind == AxisString {
			return nil, fmt.Errorf("experiments: axis %q is categorical; ranges apply to numeric axes only", a.Name)
		}
		return expandRange(a, spec)
	}
	parts := strings.Split(spec, ",")
	out := make([]string, 0, len(parts))
	for _, v := range parts {
		v = strings.TrimSpace(v)
		if v == "" {
			return nil, fmt.Errorf("experiments: axis %q spec %q has an empty value", a.Name, spec)
		}
		if err := a.Check(v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// expandRange expands a numeric lo:hi:step spec under the axis's kind.
func expandRange(a Axis, spec string) ([]string, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("experiments: axis %q range %q must be lo:hi:step", a.Name, spec)
	}
	if a.Kind == AxisInt {
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("experiments: axis %q range %q needs int lo:hi:step", a.Name, spec)
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("experiments: axis %q range %q needs step > 0 and hi >= lo", a.Name, spec)
		}
		var out []string
		for v := lo; v <= hi; v += step {
			out = append(out, strconv.Itoa(v))
		}
		return out, nil
	}
	lo, err1 := strconv.ParseFloat(parts[0], 64)
	hi, err2 := strconv.ParseFloat(parts[1], 64)
	step, err3 := strconv.ParseFloat(parts[2], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("experiments: axis %q range %q needs numeric lo:hi:step", a.Name, spec)
	}
	if step <= 0 || hi < lo {
		return nil, fmt.Errorf("experiments: axis %q range %q needs step > 0 and hi >= lo", a.Name, spec)
	}
	var out []string
	tol := step * 1e-9
	for i := 0; ; i++ {
		v := lo + float64(i)*step
		if v > hi+tol {
			break
		}
		out = append(out, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return out, nil
}
