// Swarm: robot-swarm property frequency estimation (paper Section
// 5.2), through the v2 Spec/Run API.
//
// A swarm of 400 robots patrols a 100x100 arena. 25% of the robots
// have completed their task (the "property"). Robots detect the
// property on contact and separately track total encounters and
// encounters with task-complete robots; each robot estimates the
// overall density d, the property density d_P, and the completion
// frequency f_P = d_P / d — all without any global communication.
//
// Both scenarios — perfect sensing and the Section 6.1 noise model
// where 20% of contacts are missed — are declared as PropertySpecs
// and run concurrently through a Manager; thinning cancels in the
// ratio, so the noisy run still recovers f_P.
//
// Run with:
//
//	go run ./examples/swarm
package main

import (
	"fmt"
	"log"
	"math"

	"antdensity"
	"antdensity/internal/stats"
)

const (
	arenaSide = 100
	robots    = 400
	completed = 100 // robots with the property
	rounds    = 3000
)

func main() {
	spec := func(opts ...antdensity.SpecOption) *antdensity.Spec {
		return antdensity.PropertySpec(append([]antdensity.SpecOption{
			antdensity.WithTorus2D(arenaSide),
			antdensity.WithAgents(robots),
			antdensity.WithSeed(2024),
			antdensity.WithRounds(rounds),
			antdensity.WithTaggedCount(completed),
		}, opts...)...)
	}

	// Two independent runs share the manager's worker pool.
	m := antdensity.NewManager(2)
	defer m.Close()
	perfect, err := m.Submit(spec())
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := m.Submit(spec(antdensity.WithSensingNoise(0.8, 0, 7)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== perfect sensing ==")
	report(output(perfect))

	fmt.Println()
	fmt.Println("== 20% of contacts missed (Section 6.1 noise model) ==")
	report(output(noisy))
}

func output(mr *antdensity.ManagedRun) *antdensity.PropertyResult {
	out, err := mr.Run.Output()
	if err != nil {
		log.Fatal(err)
	}
	return out.Property
}

func report(res *antdensity.PropertyResult) {
	// Ground truth from an untagged observer's perspective.
	trueF := float64(completed) / float64(robots-1)
	var freqs []float64
	for _, f := range res.Frequency {
		if !math.IsNaN(f) {
			freqs = append(freqs, f)
		}
	}
	fmt.Printf("true completion frequency f_P: %.4f\n", trueF)
	fmt.Printf("robots reporting:              %d / %d\n", len(freqs), robots)
	fmt.Printf("mean estimated f_P:            %.4f\n", stats.Mean(freqs))
	fmt.Printf("median estimated f_P:          %.4f\n", stats.Median(freqs))
	fmt.Printf("mean |relative error|:         %.3f\n", stats.Mean(stats.RelErrors(freqs, trueF)))
	fmt.Printf("robots within 25%% of truth:    %.1f%%\n", 100*(1-stats.FailureRate(freqs, trueF, 0.25)))
}
