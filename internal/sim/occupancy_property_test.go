package sim

import (
	"fmt"
	"testing"

	"antdensity/internal/rng"
	"antdensity/internal/topology"
)

// TestOccupancyAblationProperty cross-checks the hash-based occupancy
// index against the sort-based ablation on randomized worlds: for
// every topology family, random agent counts, tag sets, and group
// assignments, all count variants must agree exactly — with each
// other and with the per-agent query path.
func TestOccupancyAblationProperty(t *testing.T) {
	topologies := []struct {
		name string
		make func() topology.Graph
	}{
		{name: "torus2d", make: func() topology.Graph { return topology.MustTorus(2, 8) }},
		{name: "ring", make: func() topology.Graph {
			g, err := topology.NewRing(50)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{name: "hypercube", make: func() topology.Graph { return topology.MustHypercube(6) }},
		{name: "complete", make: func() topology.Graph { return topology.MustComplete(40) }},
	}
	for _, tp := range topologies {
		tp := tp
		t.Run(tp.name, func(t *testing.T) {
			g := tp.make()
			s := rng.New(uint64(len(tp.name)) * 1000003)
			const cases = 25
			for c := 0; c < cases; c++ {
				agents := 1 + s.Intn(3*int(g.NumNodes()))
				w := MustWorld(Config{Graph: g, NumAgents: agents, Seed: s.Uint64()})
				// Random tag set and random assignment over groups
				// {0 (none), 1, 2}.
				for i := 0; i < agents; i++ {
					if s.Bernoulli(0.3) {
						w.SetTagged(i, true)
					}
					w.SetGroup(i, s.Intn(3))
				}
				for r := 0; r < 4; r++ {
					w.Step()
					checkOccupancyAgreement(t, w, fmt.Sprintf("%s case %d round %d", tp.name, c, r))
					if t.Failed() {
						return
					}
				}
				// Regression: clearing the last member of every group
				// must not leave stale per-group occupancy behind.
				for i := 0; i < agents; i++ {
					w.SetGroup(i, 0)
				}
				for _, grp := range []int{1, 2} {
					for i, n := range w.CountsInGroupAll(grp) {
						if n != 0 {
							t.Fatalf("%s case %d: agent %d sees %d members of cleared group %d", tp.name, c, i, n, grp)
						}
					}
				}
				checkOccupancyAgreement(t, w, fmt.Sprintf("%s case %d cleared-groups", tp.name, c))
				if t.Failed() {
					return
				}
			}
		})
	}
}

// checkOccupancyAgreement asserts every counting path agrees on w's
// current configuration.
func checkOccupancyAgreement(t *testing.T, w *World, ctx string) {
	t.Helper()
	hash := w.CountsAll()
	sorted := w.CountsAllSorted()
	hashTag := w.CountsTaggedAll()
	sortedTag := w.CountsTaggedAllSorted()
	groups := []int{1, 2}
	hashGroup := make(map[int][]int, len(groups))
	sortedGroup := make(map[int][]int, len(groups))
	for _, grp := range groups {
		hashGroup[grp] = w.CountsInGroupAll(grp)
		sortedGroup[grp] = w.CountsInGroupAllSorted(grp)
	}
	for i := 0; i < w.NumAgents(); i++ {
		if hash[i] != sorted[i] {
			t.Errorf("%s agent %d: CountsAll %d != CountsAllSorted %d", ctx, i, hash[i], sorted[i])
			return
		}
		if hash[i] != w.Count(i) {
			t.Errorf("%s agent %d: CountsAll %d != Count %d", ctx, i, hash[i], w.Count(i))
			return
		}
		if hashTag[i] != sortedTag[i] {
			t.Errorf("%s agent %d: CountsTaggedAll %d != CountsTaggedAllSorted %d", ctx, i, hashTag[i], sortedTag[i])
			return
		}
		if hashTag[i] != w.CountTagged(i) {
			t.Errorf("%s agent %d: CountsTaggedAll %d != CountTagged %d", ctx, i, hashTag[i], w.CountTagged(i))
			return
		}
		for _, grp := range groups {
			if hashGroup[grp][i] != sortedGroup[grp][i] {
				t.Errorf("%s agent %d group %d: hash %d != sorted %d", ctx, i, grp, hashGroup[grp][i], sortedGroup[grp][i])
				return
			}
			if hashGroup[grp][i] != w.CountInGroup(i, grp) {
				t.Errorf("%s agent %d group %d: CountsInGroupAll %d != CountInGroup %d", ctx, i, grp, hashGroup[grp][i], w.CountInGroup(i, grp))
				return
			}
		}
	}
}
