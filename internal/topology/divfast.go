package topology

import "math/bits"

// fastDiv returns v / d for 0 <= v < 2^63, given the precomputed
// reciprocal m = ^uint64(0) / d. It replaces a ~25-cycle hardware
// division with one multiply-high and at most one correction.
//
// Correctness: write 2^64 - 1 = m*d + r with 0 <= r < d. Then
//
//	v*m / 2^64 = v/d - v*(1+r) / (d * 2^64)
//
// and the error term is at most v/2^64 < 1/2 for v < 2^63, so
// bits.Mul64's high word is either floor(v/d) or floor(v/d) - 1;
// the remainder check repairs the latter. Torus node ids are
// non-negative int64, so the v < 2^63 precondition always holds.
func fastDiv(v, d, m uint64) uint64 {
	q, _ := bits.Mul64(v, m)
	if v-q*d >= d {
		q++
	}
	return q
}
