package topology

import (
	"testing"

	"antdensity/internal/rng"
)

// regularFastGraphs are the topologies with arithmetic fast-path
// kernels, paired with generic-interface twins for equivalence checks.
func regularFastGraphs(t *testing.T) []Regular {
	t.Helper()
	ring, err := NewRing(17)
	if err != nil {
		t.Fatal(err)
	}
	return []Regular{MustTorus(2, 9), MustTorus(3, 4), ring, MustHypercube(7), MustComplete(23)}
}

func TestNeighborUncheckedMatchesNeighbor(t *testing.T) {
	for _, g := range regularFastGraphs(t) {
		deg := g.CommonDegree()
		for v := int64(0); v < g.NumNodes(); v++ {
			for i := 0; i < deg; i++ {
				want := g.Neighbor(v, i)
				var got int64
				switch c := g.(type) {
				case *Torus:
					got = c.NeighborUnchecked(v, i)
				case *Hypercube:
					got = c.NeighborUnchecked(v, i)
				case *Complete:
					got = c.NeighborUnchecked(v, i)
				}
				if got != want {
					t.Fatalf("%T: NeighborUnchecked(%d, %d) = %d, Neighbor = %d", g, v, i, got, want)
				}
			}
		}
	}
}

func TestRandomStepsMatchesRandomStep(t *testing.T) {
	for _, g := range regularFastGraphs(t) {
		const agents = 64
		root := rng.New(31)
		bulkStreams := make([]rng.Stream, agents)
		scalarStreams := make([]*rng.Stream, agents)
		pos := make([]int64, agents)
		ref := make([]int64, agents)
		for i := range pos {
			bulkStreams[i] = root.SplitValue(uint64(i))
			scalarStreams[i] = root.Split(uint64(i))
			pos[i] = int64(i) % g.NumNodes()
			ref[i] = pos[i]
		}
		for round := 0; round < 20; round++ {
			switch c := g.(type) {
			case *Torus:
				c.RandomSteps(pos, bulkStreams)
			case *Hypercube:
				c.RandomSteps(pos, bulkStreams)
			case *Complete:
				c.RandomSteps(pos, bulkStreams)
			}
			for i := range ref {
				ref[i] = RandomStep(g, ref[i], scalarStreams[i])
			}
			for i := range ref {
				if pos[i] != ref[i] {
					t.Fatalf("%T round %d agent %d: bulk %d, scalar %d", g, round, i, pos[i], ref[i])
				}
			}
		}
	}
}

func TestShiftStepsMatchesNeighbor(t *testing.T) {
	for _, g := range regularFastGraphs(t) {
		deg := g.CommonDegree()
		for dir := 0; dir < deg; dir++ {
			pos := make([]int64, g.NumNodes())
			for v := range pos {
				pos[v] = int64(v)
			}
			switch c := g.(type) {
			case *Torus:
				c.ShiftSteps(pos, dir)
			case *Hypercube:
				c.ShiftSteps(pos, dir)
			case *Complete:
				c.ShiftSteps(pos, dir)
			}
			for v := range pos {
				if want := g.Neighbor(int64(v), dir); pos[v] != want {
					t.Fatalf("%T dir %d node %d: ShiftSteps %d, Neighbor %d", g, dir, v, pos[v], want)
				}
			}
		}
	}
}

func TestShiftStepsPanicsLikeNeighbor(t *testing.T) {
	h := MustHypercube(4)
	defer func() {
		if recover() == nil {
			t.Error("ShiftSteps with an out-of-range direction did not panic")
		}
	}()
	h.ShiftSteps([]int64{0}, 99)
}

// testAdj builds an irregular CSR graph with a multi-edge, a
// self-loop, and an isolated node — the degree shapes the CSR kernels
// must handle bit-identically to the generic Degree/Neighbor path.
func testAdj(t *testing.T) *Adj {
	t.Helper()
	g, err := NewAdj(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}, // cycle
		{U: 0, V: 2}, {U: 0, V: 2}, // multi-edge
		{U: 3, V: 3},               // self-loop
		{U: 1, V: 4},
	}) // node 5 is isolated
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdjNeighborUncheckedMatchesNeighbor(t *testing.T) {
	g := testAdj(t)
	for v := int64(0); v < g.NumNodes(); v++ {
		for i := 0; i < g.Degree(v); i++ {
			if got, want := g.NeighborUnchecked(v, i), g.Neighbor(v, i); got != want {
				t.Fatalf("NeighborUnchecked(%d, %d) = %d, Neighbor = %d", v, i, got, want)
			}
		}
	}
}

func TestAdjRandomStepsMatchesRandomStep(t *testing.T) {
	g := testAdj(t)
	const agents = 48
	root := rng.New(53)
	bulkStreams := make([]rng.Stream, agents)
	scalarStreams := make([]*rng.Stream, agents)
	pos := make([]int64, agents)
	ref := make([]int64, agents)
	for i := range pos {
		bulkStreams[i] = root.SplitValue(uint64(i))
		scalarStreams[i] = root.Split(uint64(i))
		// Every node is a start, including the isolated one, which must
		// stay put without consuming a draw.
		pos[i] = int64(i) % g.NumNodes()
		ref[i] = pos[i]
	}
	for round := 0; round < 40; round++ {
		g.RandomSteps(pos, bulkStreams)
		for i := range ref {
			ref[i] = RandomStep(g, ref[i], scalarStreams[i])
		}
		for i := range ref {
			if pos[i] != ref[i] {
				t.Fatalf("round %d agent %d: bulk %d, scalar %d", round, i, pos[i], ref[i])
			}
		}
	}
	for i := range pos {
		if int64(i)%g.NumNodes() == 5 && pos[i] != 5 {
			t.Fatalf("agent %d left the isolated node: %d", i, pos[i])
		}
	}
}

func TestAdjWalkMatchesScalarReference(t *testing.T) {
	g := testAdj(t)
	for start := int64(0); start < g.NumNodes(); start++ {
		s1, s2 := rng.New(7+uint64(start)), rng.New(7+uint64(start))
		got := Walk(g, start, 64, s1)
		want := start
		for i := 0; i < 64; i++ {
			want = RandomStep(g, want, s2)
		}
		if got != want {
			t.Fatalf("start %d: Walk = %d, scalar reference = %d", start, got, want)
		}
	}
}

func TestStepperMatchesRandomStep(t *testing.T) {
	graphs := []Graph{MustTorus(2, 9), MustHypercube(7), MustComplete(23)}
	// Adjacency graphs exercise the CSR closure, including irregular
	// degrees, a self-loop, a multi-edge, and an isolated start.
	adj, err := NewAdj(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, adj, testAdj(t))
	for _, g := range graphs {
		step := Stepper(g)
		s1 := rng.New(41)
		s2 := rng.New(41)
		v1 := int64(0)
		v2 := int64(0)
		for i := 0; i < 200; i++ {
			v1 = step(v1, s1)
			v2 = RandomStep(g, v2, s2)
			if v1 != v2 {
				t.Fatalf("%T step %d: Stepper %d, RandomStep %d", g, i, v1, v2)
			}
		}
	}
}

func TestWalkValidatesStartNode(t *testing.T) {
	g := MustTorus(1, 10)
	for name, f := range map[string]func(){
		"Walk":         func() { Walk(g, 15, 3, rng.New(1)) },
		"WalkPath":     func() { WalkPath(g, -1, 3, rng.New(1)) },
		"ValidateNode": func() { ValidateNode(g, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with an out-of-range start did not panic", name)
				}
			}()
			f()
		}()
	}
}
