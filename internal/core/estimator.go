// Package core implements the paper's primary contribution: density
// estimation from random-walk encounter rates.
//
// Algorithm1 is the paper's random-walk-based estimator (Section 3):
// each agent random-walks for t rounds, sums count(position) over the
// rounds, and returns the encounter rate c/t as its density estimate.
// Theorem 1 guarantees a (1 +- eps) estimate with probability 1-delta
// on the two-dimensional torus after t = O(log(1/delta) *
// [log log(1/delta) + log(1/(d*eps))]^2 / (d*eps^2)) rounds.
//
// Algorithm4 is the independent-sampling baseline of Appendix A, and
// PropertyFrequency is the Section 5.2 robot-swarm extension that
// estimates the relative frequency of a detectable property. The
// theory.go file provides the closed-form bound calculators used by
// the experiment harness to compare measured behaviour against the
// paper's predictions.
//
// The estimators are layered on sim's streaming observation pipeline:
// CollisionObserver and PropertyObserver accumulate each round's
// per-agent counts from the pipeline's shared bulk snapshots, and
// CollisionCounts/Algorithm1/PropertyFrequency are thin sim.Run
// drivers around them. StreamingEstimator.AsObserver plugs the
// anytime-confidence-band estimator into the same loop; the quorum
// package builds per-agent early stopping on top of it. Per the
// pipeline's determinism invariant, none of these observers' results
// depend on what other observers share the run.
package core

import (
	"context"
	"fmt"
	"math"

	"antdensity/internal/rng"
	"antdensity/internal/sim"
)

// ReportFilter rewrites one round's per-agent reported counts before
// an estimator accumulates them — the injection point for the
// adversary layer (internal/adversary): honest agents' entries pass
// through, Byzantine agents' entries are replaced with whatever their
// fault strategy dictates. The filter must not mutate counts (it is
// the pipeline's shared snapshot or the observer's noise buffer);
// implementations return their own reusable buffer, keeping the hot
// path allocation-free in steady state. round is the 1-based round
// index (sim.Round.Index).
type ReportFilter func(round int, counts []int) []int

// options collects optional behaviour for the estimators.
type options struct {
	taggedOnly   bool
	detectProb   float64
	spuriousProb float64
	noiseSeed    uint64
	noisy        bool
	filter       ReportFilter
	taggedFilter ReportFilter
}

func defaultOptions() options {
	return options{detectProb: 1}
}

// Option configures an estimator run.
type Option func(*options) error

// WithTaggedOnly restricts collision counting to tagged agents,
// estimating the property density d_P of Section 5.2 instead of the
// total density d.
func WithTaggedOnly() Option {
	return func(o *options) error {
		o.taggedOnly = true
		return nil
	}
}

// WithNoise models imperfect collision sensing (Section 6.1): each
// true collision is detected independently with probability
// detectProb, and in each round a spurious collision is recorded with
// probability spuriousProb. seed drives the noise randomness.
func WithNoise(detectProb, spuriousProb float64, seed uint64) Option {
	return func(o *options) error {
		// The explicit NaN checks matter: NaN < 0 and NaN > 1 are both
		// false, so a plain range test would accept NaN and poison
		// every Binomial/Bernoulli draw in perturb.
		if math.IsNaN(detectProb) || detectProb < 0 || detectProb > 1 {
			return fmt.Errorf("core: detectProb %v outside [0, 1]", detectProb)
		}
		if math.IsNaN(spuriousProb) || spuriousProb < 0 || spuriousProb > 1 {
			return fmt.Errorf("core: spuriousProb %v outside [0, 1]", spuriousProb)
		}
		o.detectProb = detectProb
		o.spuriousProb = spuriousProb
		o.noiseSeed = seed
		o.noisy = true
		return nil
	}
}

// WithReportFilter interposes f between the pipeline's shared count
// snapshots and the estimator's accumulation: each round the observer
// feeds f the counts it is about to accumulate (the sensing-noise
// model, when enabled, has already been applied — tampering happens at
// reporting time) and accumulates f's output instead. The adversary
// layer (internal/adversary) builds its fault strategies as report
// filters; honest runs never pay for the hook.
func WithReportFilter(f ReportFilter) Option {
	return func(o *options) error {
		if f == nil {
			return fmt.Errorf("core: WithReportFilter needs a non-nil filter")
		}
		o.filter = f
		return nil
	}
}

// WithTaggedReportFilter interposes f over the tagged-count stream of
// a PropertyObserver (the property-bit channel of Section 5.2), the
// same way WithReportFilter covers the total-count stream. Within a
// round the total filter runs first — adversary implementations rely
// on that order to keep an agent's tagged report consistent with its
// total report. CollisionObserver ignores it (its single stream —
// tagged-only or total — is covered by WithReportFilter).
func WithTaggedReportFilter(f ReportFilter) Option {
	return func(o *options) error {
		if f == nil {
			return fmt.Errorf("core: WithTaggedReportFilter needs a non-nil filter")
		}
		o.taggedFilter = f
		return nil
	}
}

// CollisionObserver is the pipeline form of Algorithm 1's counting
// loop: each observed round it reads the whole round's counts from the
// shared snapshot and accumulates every agent's running total
// sum_r count(position_r) — the quantity c of Algorithm 1. It never
// stops on its own; the caller fixes the horizon via sim.Run's round
// budget.
type CollisionObserver struct {
	o      options
	noise  *rng.Stream
	buf    []int // noise scratch, allocated once; nil for exact sensing
	counts []int64
	rounds int
}

// NewCollisionObserver returns a CollisionObserver for n agents with
// the given estimator options.
func NewCollisionObserver(n int, opts ...Option) (*CollisionObserver, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	co := &CollisionObserver{o: o, counts: make([]int64, n)}
	if o.noisy {
		co.noise = rng.New(o.noiseSeed)
		co.buf = make([]int, n)
	}
	return co, nil
}

// Observe accumulates one round's counts for every agent.
func (co *CollisionObserver) Observe(r *sim.Round) sim.Signal {
	var cs []int
	if co.o.taggedOnly {
		cs = r.TaggedCounts()
	} else {
		cs = r.Counts()
	}
	if co.o.noisy {
		for i, c := range cs {
			co.buf[i] = perturb(c, co.o, co.noise)
		}
		cs = co.buf
	}
	if co.o.filter != nil {
		cs = co.o.filter(r.Index(), cs)
	}
	for i, c := range cs {
		co.counts[i] += int64(c)
	}
	co.rounds++
	return sim.Continue
}

// Rounds returns the number of observed rounds.
func (co *CollisionObserver) Rounds() int { return co.rounds }

// Counts returns each agent's accumulated collision total. The slice
// is live; it keeps accumulating if observation continues.
func (co *CollisionObserver) Counts() []int64 { return co.counts }

// Estimates returns each agent's encounter-rate density estimate
// c/rounds — Algorithm 1's output at the current horizon, or all
// zeros before the first observed round (matching
// StreamingEstimator.Estimate).
func (co *CollisionObserver) Estimates() []float64 {
	out := make([]float64, len(co.counts))
	if co.rounds == 0 {
		return out
	}
	for i, c := range co.counts {
		out[i] = float64(c) / float64(co.rounds)
	}
	return out
}

// CollisionCounts advances w by t rounds through the streaming
// pipeline and returns each agent's total collision count
// sum_r count(position_r) — the quantity c maintained by Algorithm 1.
func CollisionCounts(w *sim.World, t int, opts ...Option) ([]int64, error) {
	return CollisionCountsContext(context.Background(), w, t, opts...)
}

// CollisionCountsContext is CollisionCounts with cooperative
// cancellation: the run stops on a round boundary as soon as ctx is
// done (see sim.RunContext) and the context's error is returned. Extra
// observers ride along on the same run; per the pipeline's determinism
// invariant they cannot change the counts.
func CollisionCountsContext(ctx context.Context, w *sim.World, t int, opts ...Option) ([]int64, error) {
	if t < 1 {
		return nil, fmt.Errorf("core: round count must be >= 1, got %d", t)
	}
	obs, err := NewCollisionObserver(w.NumAgents(), opts...)
	if err != nil {
		return nil, err
	}
	if _, err := sim.RunContext(ctx, w, t, obs); err != nil {
		return nil, err
	}
	return obs.Counts(), nil
}

// perturb applies the WithNoise sensing model to one round's count:
// the c true collisions thin to Binomial(c, detectProb) detections
// (sampled in one draw; see rng.Stream.Binomial) and a spurious
// collision is added with probability spuriousProb.
func perturb(c int, o options, noise *rng.Stream) int {
	detected := c
	if o.detectProb < 1 {
		detected = noise.Binomial(c, o.detectProb)
	}
	if o.spuriousProb > 0 && noise.Bernoulli(o.spuriousProb) {
		detected++
	}
	return detected
}

// Algorithm1 runs the paper's random-walk-based density estimation
// (Algorithm 1) for t rounds on w and returns each agent's density
// estimate c/t. The world's agents should use the sim.RandomWalk
// policy (the default) for the Theorem 1 guarantees to apply; other
// policies realize the Section 6.1 perturbation ablations.
func Algorithm1(w *sim.World, t int, opts ...Option) ([]float64, error) {
	return Algorithm1Context(context.Background(), w, t, opts...)
}

// Algorithm1Context is Algorithm 1 with cooperative cancellation: a
// cancelled run returns ctx's error within one round of ctx.Done(),
// leaving w consistent on a round boundary.
func Algorithm1Context(ctx context.Context, w *sim.World, t int, opts ...Option) ([]float64, error) {
	counts, err := CollisionCountsContext(ctx, w, t, opts...)
	if err != nil {
		return nil, err
	}
	estimates := make([]float64, len(counts))
	for i, c := range counts {
		estimates[i] = float64(c) / float64(t)
	}
	return estimates, nil
}

// PropertyResult holds the per-agent outputs of PropertyFrequency.
type PropertyResult struct {
	// Density is each agent's estimate of the overall density d.
	Density []float64
	// PropertyDensity is each agent's estimate of the property
	// density d_P.
	PropertyDensity []float64
	// Frequency is each agent's estimate of f_P = d_P / d; NaN where
	// the density estimate is zero.
	Frequency []float64
}

// PropertyObserver is the pipeline form of the Section 5.2 swarm
// computation: each round it accumulates, per agent, both the total
// and the tagged collision counts from the shared snapshots.
type PropertyObserver struct {
	o         options
	noise     *rng.Stream
	totalBuf  []int // noise scratch, allocated once; nil for exact sensing
	taggedBuf []int
	total     []int64
	tagged    []int64
	rounds    int
}

// NewPropertyObserver returns a PropertyObserver for n agents.
func NewPropertyObserver(n int, opts ...Option) (*PropertyObserver, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	po := &PropertyObserver{o: o, total: make([]int64, n), tagged: make([]int64, n)}
	if o.noisy {
		po.noise = rng.New(o.noiseSeed)
		po.totalBuf = make([]int, n)
		po.taggedBuf = make([]int, n)
	}
	return po, nil
}

// Observe accumulates one round's total and tagged counts.
func (po *PropertyObserver) Observe(r *sim.Round) sim.Signal {
	cts := r.Counts()
	cps := r.TaggedCounts()
	if po.o.noisy {
		for i := range cts {
			// Perturb the non-tagged and tagged components
			// separately so the two counters see consistent noise.
			other := perturb(cts[i]-cps[i], po.o, po.noise)
			prop := perturb(cps[i], po.o, po.noise)
			po.totalBuf[i] = other + prop
			po.taggedBuf[i] = prop
		}
		cts, cps = po.totalBuf, po.taggedBuf
	}
	// Total filter before tagged filter — the documented order
	// WithTaggedReportFilter implementations may rely on.
	if po.o.filter != nil {
		cts = po.o.filter(r.Index(), cts)
	}
	if po.o.taggedFilter != nil {
		cps = po.o.taggedFilter(r.Index(), cps)
	}
	for i := range cts {
		po.total[i] += int64(cts[i])
		po.tagged[i] += int64(cps[i])
	}
	po.rounds++
	return sim.Continue
}

// Rounds returns the number of observed rounds.
func (po *PropertyObserver) Rounds() int { return po.rounds }

// Result converts the accumulated counts into per-agent density,
// property-density, and frequency estimates at the current horizon.
func (po *PropertyObserver) Result() *PropertyResult {
	n := len(po.total)
	res := &PropertyResult{
		Density:         make([]float64, n),
		PropertyDensity: make([]float64, n),
		Frequency:       make([]float64, n),
	}
	for i := 0; i < n; i++ {
		res.Density[i] = float64(po.total[i]) / float64(po.rounds)
		res.PropertyDensity[i] = float64(po.tagged[i]) / float64(po.rounds)
		res.Frequency[i] = res.PropertyDensity[i] / res.Density[i]
	}
	return res
}

// PropertyFrequency implements the Section 5.2 swarm computation: each
// agent simultaneously tracks total encounters and encounters with
// tagged agents over t rounds, estimating the overall density d, the
// property density d_P, and the relative frequency f_P = d_P/d.
// Tag agents with w.SetTagged before calling.
func PropertyFrequency(w *sim.World, t int, opts ...Option) (*PropertyResult, error) {
	return PropertyFrequencyContext(context.Background(), w, t, opts...)
}

// PropertyFrequencyContext is PropertyFrequency with cooperative
// cancellation (see sim.RunContext).
func PropertyFrequencyContext(ctx context.Context, w *sim.World, t int, opts ...Option) (*PropertyResult, error) {
	if t < 1 {
		return nil, fmt.Errorf("core: round count must be >= 1, got %d", t)
	}
	obs, err := NewPropertyObserver(w.NumAgents(), opts...)
	if err != nil {
		return nil, err
	}
	if _, err := sim.RunContext(ctx, w, t, obs); err != nil {
		return nil, err
	}
	return obs.Result(), nil
}
