package experiments

import (
	"reflect"
	"testing"
)

func TestGridRowMajorOrder(t *testing.T) {
	axes := []Axis{
		StringAxis("a", []string{"x", "y"}, nil),
		IntAxis("b", []int{1, 2, 3}, nil),
	}
	var got [][2]string
	err := Grid(Params{}, axes, func(pt Point) error {
		got = append(got, [2]string{pt.String("a"), pt.String("b")})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"x", "1"}, {"x", "2"}, {"x", "3"},
		{"y", "1"}, {"y", "2"}, {"y", "3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grid order = %v, want row-major %v", got, want)
	}
}

func TestAxisQuickValues(t *testing.T) {
	a := IntAxis("t", []int{10, 20, 30}, []int{10})
	if got := a.Values(false); !reflect.DeepEqual(got, []string{"10", "20", "30"}) {
		t.Errorf("full values = %v", got)
	}
	if got := a.Values(true); !reflect.DeepEqual(got, []string{"10"}) {
		t.Errorf("quick values = %v", got)
	}
	noQuick := FloatAxis("d", []float64{0.1}, nil)
	if got := noQuick.Values(true); !reflect.DeepEqual(got, []string{"0.1"}) {
		t.Errorf("nil quick should fall back to full, got %v", got)
	}
}

func TestPointAccessors(t *testing.T) {
	axes := []Axis{
		FloatAxis("d", []float64{0.25, 0.5}, nil),
		IntAxis("t", []int{100}, nil),
		StringAxis("topo", []string{"ring"}, nil),
	}
	calls := 0
	err := Grid(Params{}, axes, func(pt Point) error {
		calls++
		if pt.Len() != 3 {
			t.Errorf("Len = %d", pt.Len())
		}
		if pt.Int("t") != 100 || pt.String("topo") != "ring" {
			t.Errorf("accessors: t=%v topo=%v", pt.Int("t"), pt.String("topo"))
		}
		wantD := 0.25
		if pt.Index("d") == 1 {
			wantD = 0.5
		}
		if pt.Float("d") != wantD {
			t.Errorf("Float(d) = %v at index %d", pt.Float("d"), pt.Index("d"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("grid ran %d cells, want 2", calls)
	}
}

func TestPointUnknownAxisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown axis lookup did not panic")
		}
	}()
	_ = Grid(Params{}, []Axis{IntAxis("t", []int{1}, nil)}, func(pt Point) error {
		pt.Int("nope")
		return nil
	})
}

func TestExpandAxisSpec(t *testing.T) {
	intAxis := IntAxis("t", []int{1}, nil)
	floatAxis := FloatAxis("d", []float64{1}, nil)
	strAxis := StringAxis("topo", []string{"ring"}, nil)

	tests := []struct {
		axis Axis
		spec string
		want []string
	}{
		{intAxis, "5,10,20", []string{"5", "10", "20"}},
		{intAxis, "100:1000:100", []string{"100", "200", "300", "400", "500", "600", "700", "800", "900", "1000"}},
		{intAxis, "3:10:4", []string{"3", "7"}},
		{floatAxis, "0.1:0.3:0.1", []string{"0.1", "0.2", "0.30000000000000004"}},
		{floatAxis, "0.01, 0.05", []string{"0.01", "0.05"}},
		{strAxis, "ring,torus2d", []string{"ring", "torus2d"}},
	}
	for _, tt := range tests {
		got, err := ExpandAxisSpec(tt.axis, tt.spec)
		if err != nil {
			t.Errorf("ExpandAxisSpec(%s, %q): %v", tt.axis.Name, tt.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ExpandAxisSpec(%s, %q) = %v, want %v", tt.axis.Name, tt.spec, got, tt.want)
		}
	}

	bad := []struct {
		axis Axis
		spec string
	}{
		{intAxis, ""},
		{intAxis, "abc"},
		{intAxis, "1,abc"},
		{intAxis, "1:10"},
		{intAxis, "10:1:2"},
		{intAxis, "1:10:0"},
		{intAxis, "1.5:2:0.5"},
		{floatAxis, "x:1:1"},
		{strAxis, "a:b:c"},
	}
	for _, tt := range bad {
		if _, err := ExpandAxisSpec(tt.axis, tt.spec); err == nil {
			t.Errorf("ExpandAxisSpec(%s, %q) succeeded, want error", tt.axis.Name, tt.spec)
		}
	}
}

func TestGridEmptyAxisErrors(t *testing.T) {
	if err := Grid(Params{}, nil, func(Point) error { return nil }); err == nil {
		t.Error("zero axes accepted")
	}
	empty := []Axis{{Name: "x", Kind: AxisInt}}
	if err := Grid(Params{}, empty, func(Point) error { return nil }); err == nil {
		t.Error("axis with no values accepted")
	}
}

func TestEveryRegisteredAxisHasValues(t *testing.T) {
	for _, e := range All() {
		for _, a := range e.Axes {
			if a.Name == "" {
				t.Errorf("%s has an unnamed axis", e.ID)
			}
			for _, quick := range []bool{false, true} {
				vs := a.Values(quick)
				if len(vs) == 0 {
					t.Errorf("%s axis %q has no values (quick=%v)", e.ID, a.Name, quick)
				}
				for _, v := range vs {
					if err := a.Check(v); err != nil {
						t.Errorf("%s axis %q default value %q fails its own kind check: %v", e.ID, a.Name, v, err)
					}
				}
			}
		}
		if e.Cell != nil && len(e.Columns) == 0 {
			t.Errorf("%s has a cell but no columns", e.ID)
		}
	}
}
