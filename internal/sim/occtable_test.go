package sim

import (
	"testing"

	"antdensity/internal/rng"
)

// occProbeStats returns the maximum and total cyclic home-to-slot
// probe distances over a table's live entries — the cost model for
// every lookup path (get, totalsInto, inc, dec).
func occProbeStats(t *occTable) (maxProbe, total int) {
	capacity := uint64(len(t.keys))
	for i, k := range t.keys {
		if k == emptyKey {
			continue
		}
		d := int((uint64(i) - t.home(k) + capacity) & t.mask)
		total += d
		if d > maxProbe {
			maxProbe = d
		}
	}
	return maxProbe, total
}

// TestOccTableGrowShrink drives the table through a population boom
// and collapse against an oracle map: growth must preserve every
// entry, collapse must hand memory back, and — the property the
// compaction exists for — a grown-then-shrunk table must probe no
// worse than a fresh table built directly from the surviving
// population.
func TestOccTableGrowShrink(t *testing.T) {
	s := rng.New(0xdecade)
	const boom = 5000
	keys := make([]int64, 0, boom)
	seen := make(map[int64]bool, boom)
	for len(keys) < boom {
		k := int64(s.Uint64() & (1<<40 - 1))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	// Boom: a table sized for 4 agents absorbs 5000 occupied nodes,
	// growing as it goes. Multiplicities 1–3 with a random tagged
	// share exercise the cell payload across rehashes.
	tab := newOccTable(4)
	oracle := make(map[int64]cell, boom)
	for _, k := range keys {
		n := 1 + s.Intn(3)
		for j := 0; j < n; j++ {
			tagged := s.Bernoulli(0.3)
			tab.inc(k, tagged)
			c := oracle[k]
			c.total++
			if tagged {
				c.tagged++
			}
			oracle[k] = c
		}
	}
	if tab.used != boom {
		t.Fatalf("after boom: used = %d, want %d", tab.used, boom)
	}
	peak := len(tab.keys)
	if peak < 4*boom {
		t.Fatalf("after boom: capacity %d violates the 1/4 load bound for %d entries", peak, boom)
	}
	for _, k := range keys {
		if got := tab.get(k); got != oracle[k] {
			t.Fatalf("after boom: get(%d) = %+v, want %+v", k, got, oracle[k])
		}
	}

	// Collapse: empty all but the last 200 nodes.
	const survivors = 200
	for _, k := range keys[:boom-survivors] {
		c := oracle[k]
		for ; c.total > 0; c.total-- {
			tagged := c.tagged > 0
			if tagged {
				c.tagged--
			}
			tab.dec(k, tagged)
		}
		delete(oracle, k)
	}
	if tab.used != survivors {
		t.Fatalf("after collapse: used = %d, want %d", tab.used, survivors)
	}
	if len(tab.keys) >= peak {
		t.Fatalf("after collapse: capacity %d never shrank from peak %d", len(tab.keys), peak)
	}
	if c := len(tab.keys); c > minShrinkCap && 32*tab.used < c {
		t.Fatalf("after collapse: capacity %d still above the shrink trigger for %d entries", c, tab.used)
	}
	for k, want := range oracle {
		if got := tab.get(k); got != want {
			t.Fatalf("after collapse: get(%d) = %+v, want %+v", k, got, want)
		}
	}

	// The compaction property: the survivor table probes no worse
	// than a fresh table holding the same entries.
	fresh := newOccTable(survivors)
	for k, c := range oracle {
		for j := int32(0); j < c.total; j++ {
			fresh.inc(k, j < c.tagged)
		}
	}
	shrunkMax, shrunkTotal := occProbeStats(tab)
	freshMax, freshTotal := occProbeStats(fresh)
	if shrunkMax > freshMax+2 {
		t.Errorf("shrunk table max probe %d, fresh %d", shrunkMax, freshMax)
	}
	if shrunkTotal > 2*freshTotal+2*survivors {
		t.Errorf("shrunk table total probe distance %d, fresh %d", shrunkTotal, freshTotal)
	}
}

// TestOccTableChurnHysteresis pins the anti-thrash property: a
// population oscillating around a fixed size — every agent deleted
// and reinserted each round — must never resize the table after the
// initial build.
func TestOccTableChurnHysteresis(t *testing.T) {
	s := rng.New(31337)
	const agents = 3000 // capacity 16384, above minShrinkCap
	tab := newOccTable(agents)
	keys := make([]int64, agents)
	for i := range keys {
		keys[i] = int64(s.Uint64() & (1<<30 - 1))
		tab.inc(keys[i], false)
	}
	capBefore := len(tab.keys)
	if capBefore <= minShrinkCap {
		t.Fatalf("test needs a shrink-eligible capacity, got %d", capBefore)
	}
	for round := 0; round < 20; round++ {
		for i := range keys {
			tab.dec(keys[i], false)
			keys[i] = int64(s.Uint64() & (1<<30 - 1))
			tab.inc(keys[i], false)
		}
		if len(tab.keys) != capBefore {
			t.Fatalf("round %d: capacity moved %d -> %d under steady churn", round, capBefore, len(tab.keys))
		}
	}
}
