package stats

import (
	"math"
	"testing"
	"testing/quick"

	"antdensity/internal/rng"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "single", xs: []float64{3}, want: 3},
		{name: "several", xs: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", xs: []float64{-1, 1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			approx(t, "Mean", Mean(tt.xs), tt.want, 1e-12)
		})
	}
}

func TestVariance(t *testing.T) {
	approx(t, "Variance", Variance([]float64{1, 2, 3, 4}), 1.25, 1e-12)
	approx(t, "Variance single", Variance([]float64{5}), 0, 0)
	approx(t, "SampleVariance", SampleVariance([]float64{1, 2, 3, 4}), 5.0/3, 1e-12)
	approx(t, "StdDev", StdDev([]float64{2, 4}), 1, 1e-12)
}

func TestMoments(t *testing.T) {
	xs := []float64{1, 1, 4, 4}
	approx(t, "CentralMoment2", CentralMoment(xs, 2), 2.25, 1e-12)
	approx(t, "CentralMoment3 symmetric", CentralMoment(xs, 3), 0, 1e-12)
	approx(t, "RawMoment1", RawMoment(xs, 1), 2.5, 1e-12)
	approx(t, "RawMoment2", RawMoment(xs, 2), 8.5, 1e-12)
	approx(t, "RawMoment empty", RawMoment(nil, 2), 0, 0)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	approx(t, "q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "q1", Quantile(xs, 1), 4, 1e-12)
	approx(t, "median", Median(xs), 2.5, 1e-12)
	approx(t, "q0.25", Quantile(xs, 0.25), 1.75, 1e-12)
	approx(t, "single", Quantile([]float64{7}, 0.9), 7, 0)

	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Quantile(nil, 0.5) }},
		{"below", func() { Quantile([]float64{1}, -0.1) }},
		{"above", func() { Quantile([]float64{1}, 1.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	approx(t, "Min", Min(xs), -2, 0)
	approx(t, "Max", Max(xs), 7, 0)
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +-Inf")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, "Mean", s.Mean, 3, 1e-12)
	approx(t, "Median", s.Median, 3, 1e-12)
	approx(t, "Min", s.Min, 1, 0)
	approx(t, "Max", s.Max, 5, 0)
}

func TestFailureRate(t *testing.T) {
	ests := []float64{0.9, 1.0, 1.1, 1.5, 0.5}
	// Band (1 +- 0.2) around truth 1: accepts 0.9, 1.0, 1.1.
	approx(t, "FailureRate", FailureRate(ests, 1, 0.2), 0.4, 1e-12)
	approx(t, "FailureRate empty", FailureRate(nil, 1, 0.2), 0, 0)
	approx(t, "FailureRate all pass", FailureRate([]float64{1}, 1, 0.01), 0, 0)
}

func TestRelErrors(t *testing.T) {
	got := RelErrors([]float64{1.1, 0.8}, 1)
	approx(t, "RelErrors[0]", got[0], 0.1, 1e-12)
	approx(t, "RelErrors[1]", got[1], 0.2, 1e-12)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RelErrors with zero truth did not panic")
			}
		}()
		RelErrors([]float64{1}, 0)
	}()
}

func TestMedianOfMeans(t *testing.T) {
	// One wild outlier among nine good samples: a 3-group median of
	// means suppresses it.
	xs := []float64{1, 1, 1, 1000, 1, 1, 1, 1, 1}
	mom := MedianOfMeans(xs, 3)
	if mom != 1 {
		t.Errorf("MedianOfMeans = %v, want 1", mom)
	}
	// groups > len clamps.
	approx(t, "clamped", MedianOfMeans([]float64{2, 4}, 10), 3, 1e-12)
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit := FitLine(xs, ys)
	approx(t, "Slope", fit.Slope, 2, 1e-12)
	approx(t, "Intercept", fit.Intercept, 1, 1e-12)
	approx(t, "R2", fit.R2, 1, 1e-12)
}

func TestFitLineNoisy(t *testing.T) {
	s := rng.New(1)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 5 - 0.5*xs[i] + 0.1*s.NormFloat64()
	}
	fit := FitLine(xs, ys)
	approx(t, "Slope", fit.Slope, -0.5, 0.01)
	approx(t, "Intercept", fit.Intercept, 5, 0.2)
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^-1 with zero noise; include a zero point to test skipping.
	xs := []float64{1, 2, 4, 8, 0}
	ys := []float64{3, 1.5, 0.75, 0.375, 0}
	alpha, c, r2 := FitPowerLaw(xs, ys)
	approx(t, "alpha", alpha, -1, 1e-10)
	approx(t, "c", c, 3, 1e-10)
	approx(t, "r2", r2, 1, 1e-10)
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 5}
	counts := Histogram(xs, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", counts)
	}
}

func TestBinomialCI(t *testing.T) {
	half := BinomialCI(0.5, 10000)
	approx(t, "BinomialCI", half, 1.96*0.005, 1e-6)
	if !math.IsInf(BinomialCI(0.5, 0), 1) {
		t.Error("BinomialCI with n=0 should be +Inf")
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	// Property: for any data, Min <= Quantile(q) <= Max.
	s := rng.New(2)
	f := func(n uint8, q8 uint8) bool {
		n = n%50 + 1
		q := float64(q8) / 255
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.NormFloat64()
		}
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-12 && v <= Max(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariancePropertyNonNegative(t *testing.T) {
	s := rng.New(3)
	f := func(n uint8) bool {
		xs := make([]float64, n%40+2)
		for i := range xs {
			xs[i] = s.NormFloat64() * 100
		}
		return Variance(xs) >= 0 && SampleVariance(xs) >= Variance(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanPropertyShiftInvariance(t *testing.T) {
	// Property: Mean(xs + c) == Mean(xs) + c and Variance unchanged.
	s := rng.New(4)
	f := func(n uint8, shift int8) bool {
		xs := make([]float64, n%30+2)
		ys := make([]float64, len(xs))
		c := float64(shift)
		for i := range xs {
			xs[i] = s.NormFloat64()
			ys[i] = xs[i] + c
		}
		return math.Abs(Mean(ys)-Mean(xs)-c) < 1e-9 &&
			math.Abs(Variance(ys)-Variance(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI95(t *testing.T) {
	// The n < 2 edge case is a zero-width interval, never NaN or Inf:
	// structured renderers (JSON results, sweep rows) must always see
	// a finite number.
	if ci := MeanCI95(nil); ci != 0 {
		t.Errorf("MeanCI95(nil) = %v, want 0 (zero-width)", ci)
	}
	if ci := MeanCI95([]float64{3}); ci != 0 {
		t.Errorf("MeanCI95(single) = %v, want 0 (zero-width)", ci)
	}
	// n samples of {0, 2} alternating: sample variance 4n/(4(n-1)) ->
	// known closed form; check against direct computation.
	xs := []float64{0, 2, 0, 2, 0, 2, 0, 2}
	want := 1.96 * math.Sqrt(SampleVariance(xs)/float64(len(xs)))
	if got := MeanCI95(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanCI95 = %v, want %v", got, want)
	}
	if got := MeanCI95(xs); got <= 0 {
		t.Errorf("MeanCI95 = %v, want positive", got)
	}
	// Width shrinks like 1/sqrt(n): quadrupling the sample count
	// should roughly halve the CI on iid-like data.
	big := make([]float64, 4*len(xs))
	for i := range big {
		big[i] = xs[i%len(xs)]
	}
	if r := MeanCI95(big) / MeanCI95(xs); r < 0.4 || r > 0.6 {
		t.Errorf("CI shrink ratio = %v, want ~0.5", r)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	// trim 0.2 on n=5 drops one order statistic per tail: mean(2,3,4).
	if got := TrimmedMean(xs, 0.2); math.Abs(got-3) > 1e-12 {
		t.Errorf("TrimmedMean = %v, want 3", got)
	}
	// trim 0 is the plain mean.
	if got, want := TrimmedMean(xs, 0), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("TrimmedMean(0) = %v, want %v", got, want)
	}
	// Order-insensitive.
	if got := TrimmedMean([]float64{100, 4, 1, 3, 2}, 0.2); math.Abs(got-3) > 1e-12 {
		t.Errorf("shuffled TrimmedMean = %v, want 3", got)
	}
	for _, bad := range []float64{-0.1, 0.5, 0.9, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TrimmedMean(trim=%v) did not panic", bad)
				}
			}()
			TrimmedMean(xs, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TrimmedMean(empty) did not panic")
			}
		}()
		TrimmedMean(nil, 0.25)
	}()
}

func TestAggregatorRoundTripAndDispatch(t *testing.T) {
	for _, a := range Aggregators() {
		got, err := ParseAggregator(a.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Errorf("ParseAggregator(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseAggregator("mode"); err == nil {
		t.Error("ParseAggregator(mode) accepted")
	}
	if Aggregators()[0] != AggMean {
		t.Error("Aggregators() must lead with the mean")
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := AggMean.Aggregate(xs); math.Abs(got-Mean(xs)) > 1e-12 {
		t.Errorf("AggMean = %v", got)
	}
	if got := AggMedian.Aggregate(xs); math.Abs(got-Median(xs)) > 1e-12 {
		t.Errorf("AggMedian = %v", got)
	}
	if got := AggTrimmed.Aggregate(xs); math.Abs(got-TrimmedMean(xs, 0.25)) > 1e-12 {
		t.Errorf("AggTrimmed = %v", got)
	}
	if got := AggMedianOfMeans.Aggregate(xs); math.Abs(got-MedianOfMeans(xs, 4)) > 1e-12 {
		t.Errorf("AggMedianOfMeans = %v", got)
	}
}

// TestRobustAggregatorsResistContamination plants a 20% fraction of
// wild outliers in an otherwise concentrated sample; every robust
// aggregator must stay near the honest location while the mean is
// dragged away — the property the adversarial experiments measure
// end to end.
func TestRobustAggregatorsResistContamination(t *testing.T) {
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = 0.1 + 0.001*float64(i%7)
	}
	for i := 0; i < 8; i++ { // 20%, scattered through the slice
		xs[i*5] = 50
	}
	if mean := AggMean.Aggregate(xs); mean < 5 {
		t.Fatalf("contaminated mean = %v, expected to be dragged above 5", mean)
	}
	for _, a := range []Aggregator{AggMedian, AggTrimmed, AggMedianOfMeans} {
		if got := a.Aggregate(xs); math.Abs(got-0.1) > 0.05 {
			t.Errorf("%v = %v, want ~0.1 despite contamination", a, got)
		}
	}
}
