package expfmt

import (
	"fmt"
	"io"
	"strconv"

	"antdensity/internal/results"
)

// This file makes expfmt the text renderer over the typed results
// model: experiments build results.Result values and RenderResult
// turns them into the fixed-width tables and note lines the harness
// has always printed. The cell formatting is byte-identical to what
// experiments produced when they formatted raw values through
// Table.AddRow, so the golden files lock the refactor.

// RenderResult writes r's series as aligned tables in order, followed
// by its notes, one per line.
func RenderResult(w io.Writer, r *results.Result) error {
	for _, s := range r.Series {
		if err := RenderSeries(w, s); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

// RenderSeries writes one series as an aligned fixed-width table.
func RenderSeries(w io.Writer, s *results.Series) error {
	headers := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		headers[i] = c.Name
	}
	tb := NewTable(headers...)
	for _, row := range s.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = CellText(c)
		}
		tb.AddRow(cells...)
	}
	return tb.Render(w)
}

// CellText renders one results cell exactly as the tables historically
// formatted the raw value: floats through the compact float format,
// integers and booleans verbatim, labels as-is.
func CellText(c results.Cell) string {
	switch c.Kind {
	case results.KindFloat:
		return formatFloat(c.Value)
	case results.KindInt:
		return strconv.FormatInt(c.Int, 10)
	case results.KindBool:
		return strconv.FormatBool(c.Bool)
	default:
		return c.Text
	}
}
